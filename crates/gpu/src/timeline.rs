//! Event-ordered execution of kernels and copies on CUDA-like streams.
//!
//! The timeline is what the nvprof-like profiler observes: an ordered list of
//! kernel and memcpy records with start times and durations. Work on one
//! stream serializes; separate streams advance independently (the device-wide
//! saturation effects of many concurrent streams are modeled analytically in
//! [`crate::contention`]).

use crate::device::DeviceSpec;
use crate::kernel::KernelDesc;
use crate::memcpy::{d2h_time_us, h2d_time_us};
use crate::timing::{kernel_busy_us, sm_occupancy_fraction};

/// Identifier of a simulated CUDA stream within one timeline.
pub type StreamId = usize;

/// Per-stream sequence number of one timeline record.
///
/// Together with the record's [`StreamId`] this forms a *stable span id*:
/// kernels, copies, and host spans on one stream are numbered 0, 1, 2, … in
/// enqueue order. Because the numbering is per-stream it does not depend on
/// how concurrently-running streams interleave their enqueues in wall-clock
/// time, so span ids are reproducible run-to-run for any deterministic
/// per-stream workload (e.g. a round-robin serving batcher).
pub type SpanSeq = u64;

/// The kind of work a span id refers to, for trace consumers that join the
/// three record vectors back into one view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A kernel launch ([`KernelRecord`]).
    Kernel,
    /// A memory copy ([`MemcpyRecord`]).
    Memcpy,
    /// Host-side glue ([`HostSpanRecord`]).
    Host,
}

/// Direction of a memory copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyKind {
    /// `cudaMemcpyHostToDevice`.
    HostToDevice,
    /// `cudaMemcpyDeviceToHost`.
    DeviceToHost,
}

/// One executed kernel, as the profiler sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRecord {
    /// Kernel symbol name.
    pub name: String,
    /// Stream it ran on.
    pub stream: StreamId,
    /// Start time (µs since timeline creation).
    pub start_us: f64,
    /// Busy duration (µs), including any profiling inflation.
    pub duration_us: f64,
    /// Grid size, for occupancy analysis.
    pub grid_blocks: u64,
    /// Fraction of SM slots occupied while resident.
    pub sm_occupancy: f64,
    /// Per-stream span sequence number (see [`SpanSeq`]).
    pub seq: SpanSeq,
}

/// One executed copy, as the profiler sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct MemcpyRecord {
    /// Copy direction.
    pub kind: CopyKind,
    /// Stream it ran on.
    pub stream: StreamId,
    /// Bytes moved.
    pub bytes: u64,
    /// Start time (µs).
    pub start_us: f64,
    /// Duration (µs).
    pub duration_us: f64,
    /// Per-stream span sequence number (see [`SpanSeq`]).
    pub seq: SpanSeq,
}

/// Host-side work between device enqueues (pre/post-processing, sync glue,
/// batcher waits), as the trace subsystem sees it.
///
/// Host spans occupy stream time exactly like kernels and copies do — they
/// advance the stream cursor — but they represent CPU work, so they are kept
/// out of [`GpuTimeline::kernels`] / [`GpuTimeline::memcpys`] and the GPU
/// utilization accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct HostSpanRecord {
    /// What the host was doing (e.g. `"host_glue"`, `"batch_wait"`).
    pub label: String,
    /// Stream whose progress the host work gated.
    pub stream: StreamId,
    /// Start time (µs).
    pub start_us: f64,
    /// Duration (µs).
    pub duration_us: f64,
    /// Per-stream span sequence number (see [`SpanSeq`]).
    pub seq: SpanSeq,
}

/// Profiling instrumentation attached to a timeline.
///
/// nvprof inflates runtimes: it serializes kernel launches through the
/// profiling fabric (a per-launch cost) and adds a small multiplicative
/// overhead to kernel execution. The paper's Table VIII (with nvprof) vs
/// Table IX (without) differ by roughly these amounts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilingOverhead {
    /// Extra cost per kernel launch, µs.
    pub per_launch_us: f64,
    /// Multiplier on kernel busy time (≥ 1).
    pub busy_multiplier: f64,
}

impl ProfilingOverhead {
    /// Typical nvprof GPU-trace-mode overhead, calibrated against the
    /// paper's Table VIII vs Table IX deltas.
    pub fn nvprof() -> Self {
        Self {
            per_launch_us: 55.0,
            busy_multiplier: 1.12,
        }
    }

    /// No instrumentation.
    pub fn none() -> Self {
        Self {
            per_launch_us: 0.0,
            busy_multiplier: 1.0,
        }
    }
}

/// A device plus per-stream cursors and the record log.
///
/// # Examples
///
/// ```
/// use trtsim_gpu::device::DeviceSpec;
/// use trtsim_gpu::kernel::KernelDesc;
/// use trtsim_gpu::timeline::GpuTimeline;
///
/// let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
/// let s = tl.create_stream();
/// tl.enqueue_h2d(s, 1 << 20);
/// tl.enqueue_kernel(s, &KernelDesc::new("k").grid(6, 128).flops(1_000_000));
/// let done = tl.sync(s);
/// assert!(done > 0.0);
/// assert_eq!(tl.kernels().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuTimeline {
    device: DeviceSpec,
    overhead: ProfilingOverhead,
    stream_cursor: Vec<f64>,
    stream_seq: Vec<SpanSeq>,
    kernels: Vec<KernelRecord>,
    memcpys: Vec<MemcpyRecord>,
    host_spans: Vec<HostSpanRecord>,
}

impl GpuTimeline {
    /// Creates a timeline with no profiler attached.
    pub fn new(device: DeviceSpec) -> Self {
        Self::with_overhead(device, ProfilingOverhead::none())
    }

    /// Creates a timeline with explicit profiling instrumentation.
    pub fn with_overhead(device: DeviceSpec, overhead: ProfilingOverhead) -> Self {
        Self {
            device,
            overhead,
            stream_cursor: Vec::new(),
            stream_seq: Vec::new(),
            kernels: Vec::new(),
            memcpys: Vec::new(),
            host_spans: Vec::new(),
        }
    }

    /// The device this timeline runs on.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Opens a new stream; its clock starts at the current maximum so freshly
    /// created streams cannot run "in the past".
    pub fn create_stream(&mut self) -> StreamId {
        let start = self.elapsed_us();
        self.stream_cursor.push(start);
        self.stream_seq.push(0);
        self.stream_cursor.len() - 1
    }

    /// Number of streams opened on this timeline.
    pub fn stream_count(&self) -> usize {
        self.stream_cursor.len()
    }

    /// The span sequence number the *next* record enqueued on `stream` will
    /// carry. Serving layers use `(next_seq before, next_seq after)` to
    /// attribute a half-open span range to one request batch.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn next_seq(&self, stream: StreamId) -> SpanSeq {
        self.stream_seq[stream]
    }

    fn bump_seq(&mut self, stream: StreamId) -> SpanSeq {
        let seq = self.stream_seq[stream];
        self.stream_seq[stream] += 1;
        seq
    }

    /// Enqueues a kernel; returns its completion time (µs).
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn enqueue_kernel(&mut self, stream: StreamId, kernel: &KernelDesc) -> f64 {
        let launch = self.device.kernel_launch_us + self.overhead.per_launch_us;
        let busy = kernel_busy_us(kernel, &self.device) * self.overhead.busy_multiplier;
        let start = self.stream_cursor[stream] + launch;
        let end = start + busy;
        let seq = self.bump_seq(stream);
        self.kernels.push(KernelRecord {
            name: kernel.name.clone(),
            stream,
            start_us: start,
            duration_us: busy,
            grid_blocks: kernel.grid_blocks,
            sm_occupancy: sm_occupancy_fraction(kernel, &self.device),
            seq,
        });
        self.stream_cursor[stream] = end;
        end
    }

    /// Enqueues one kernel launch covering `batch` inputs; returns its
    /// completion time (µs).
    ///
    /// The grid, arithmetic, and memory traffic scale with the batch (see
    /// [`KernelDesc::with_batch`]) but launch overhead — driver cost plus any
    /// profiling fabric cost — is charged once, which is where dynamic
    /// batching's throughput win comes from.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn enqueue_batched_kernel(
        &mut self,
        stream: StreamId,
        kernel: &KernelDesc,
        batch: u64,
    ) -> f64 {
        if batch <= 1 {
            self.enqueue_kernel(stream, kernel)
        } else {
            self.enqueue_kernel(stream, &kernel.clone().with_batch(batch))
        }
    }

    /// Enqueues a host→device copy; returns its completion time (µs).
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn enqueue_h2d(&mut self, stream: StreamId, bytes: u64) -> f64 {
        let dur = h2d_time_us(bytes, &self.device);
        self.push_copy(stream, CopyKind::HostToDevice, bytes, dur)
    }

    /// Enqueues a device→host copy; returns its completion time (µs).
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn enqueue_d2h(&mut self, stream: StreamId, bytes: u64) -> f64 {
        let dur = d2h_time_us(bytes, &self.device);
        self.push_copy(stream, CopyKind::DeviceToHost, bytes, dur)
    }

    fn push_copy(&mut self, stream: StreamId, kind: CopyKind, bytes: u64, dur: f64) -> f64 {
        let start = self.stream_cursor[stream];
        let end = start + dur;
        let seq = self.bump_seq(stream);
        self.memcpys.push(MemcpyRecord {
            kind,
            stream,
            bytes,
            start_us: start,
            duration_us: dur,
            seq,
        });
        self.stream_cursor[stream] = end;
        end
    }

    /// Advances a stream's cursor by host-side time (CPU work between
    /// enqueues — pre/post-processing, synchronization glue), recording an
    /// anonymous `"host"` span. Prefer [`GpuTimeline::host_span`] when the
    /// work has a meaningful label.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn host_gap(&mut self, stream: StreamId, us: f64) -> f64 {
        self.host_span(stream, "host", us)
    }

    /// Advances a stream's cursor by `us` of labelled host-side work and
    /// records it as a [`HostSpanRecord`] so traces show where stream time
    /// went between device operations. Non-positive durations advance nothing
    /// and record nothing. Returns the stream's new cursor (µs).
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn host_span(&mut self, stream: StreamId, label: &str, us: f64) -> f64 {
        if us > 0.0 {
            let start = self.stream_cursor[stream];
            let seq = self.bump_seq(stream);
            self.host_spans.push(HostSpanRecord {
                label: label.to_string(),
                stream,
                start_us: start,
                duration_us: us,
                seq,
            });
            self.stream_cursor[stream] = start + us;
        }
        self.stream_cursor[stream]
    }

    /// Completion time of everything enqueued on one stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not exist.
    pub fn sync(&self, stream: StreamId) -> f64 {
        self.stream_cursor[stream]
    }

    /// Completion time of everything enqueued anywhere.
    pub fn elapsed_us(&self) -> f64 {
        self.stream_cursor.iter().copied().fold(0.0, f64::max)
    }

    /// Kernel records, in enqueue order.
    pub fn kernels(&self) -> &[KernelRecord] {
        &self.kernels
    }

    /// Copy records, in enqueue order.
    pub fn memcpys(&self) -> &[MemcpyRecord] {
        &self.memcpys
    }

    /// Host-span records, in enqueue order.
    pub fn host_spans(&self) -> &[HostSpanRecord] {
        &self.host_spans
    }

    /// Sum of kernel busy time within `[t0, t1)`, weighted by SM occupancy,
    /// as a fraction of the window — the GR3D utilization tegrastats samples.
    pub fn utilization_between(&self, t0: f64, t1: f64) -> f64 {
        if t1 <= t0 {
            return 0.0;
        }
        let mut busy = 0.0;
        for k in &self.kernels {
            let s = k.start_us.max(t0);
            let e = (k.start_us + k.duration_us).min(t1);
            if e > s {
                busy += (e - s) * k.sm_occupancy;
            }
        }
        (busy / (t1 - t0)).min(1.0)
    }

    /// Clears records and rewinds all stream cursors to zero; stream ids
    /// remain valid. Used between repeated timing runs.
    pub fn reset(&mut self) {
        for c in &mut self.stream_cursor {
            *c = 0.0;
        }
        for s in &mut self.stream_seq {
            *s = 0;
        }
        self.kernels.clear();
        self.memcpys.clear();
        self.host_spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Precision;

    fn kernel(blocks: u64) -> KernelDesc {
        KernelDesc::new("k")
            .grid(blocks, 128)
            .flops(50_000_000)
            .dram_bytes(1 << 18)
            .precision(Precision::Fp16, true)
    }

    #[test]
    fn same_stream_serializes() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        let e1 = tl.enqueue_kernel(s, &kernel(6));
        let e2 = tl.enqueue_kernel(s, &kernel(6));
        assert!(e2 > e1);
        let ks = tl.kernels();
        assert!(ks[1].start_us >= ks[0].start_us + ks[0].duration_us);
    }

    #[test]
    fn different_streams_overlap() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s1 = tl.create_stream();
        let s2 = tl.create_stream();
        tl.enqueue_kernel(s1, &kernel(6));
        tl.enqueue_kernel(s2, &kernel(6));
        let ks = tl.kernels();
        // Both start at (almost) zero: concurrent execution.
        assert!((ks[0].start_us - ks[1].start_us).abs() < 1e-9);
    }

    #[test]
    fn memcpy_then_kernel_ordering() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        let copy_end = tl.enqueue_h2d(s, 1 << 20);
        tl.enqueue_kernel(s, &kernel(6));
        assert!(tl.kernels()[0].start_us >= copy_end);
        assert_eq!(tl.memcpys().len(), 1);
        assert_eq!(tl.memcpys()[0].kind, CopyKind::HostToDevice);
    }

    #[test]
    fn profiling_inflates_time() {
        let dev = DeviceSpec::xavier_nx();
        let mut plain = GpuTimeline::new(dev.clone());
        let mut profiled = GpuTimeline::with_overhead(dev, ProfilingOverhead::nvprof());
        let s1 = plain.create_stream();
        let s2 = profiled.create_stream();
        for _ in 0..10 {
            plain.enqueue_kernel(s1, &kernel(6));
            profiled.enqueue_kernel(s2, &kernel(6));
        }
        assert!(profiled.sync(s2) > plain.sync(s1));
    }

    #[test]
    fn utilization_counts_busy_fraction() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        // Full-occupancy kernel (grid ≥ SM slots).
        let end = tl.enqueue_kernel(s, &kernel(48));
        let util = tl.utilization_between(0.0, end);
        assert!(util > 0.5 && util <= 1.0, "util {util}");
        // Window entirely after the kernel: idle.
        assert_eq!(tl.utilization_between(end + 1.0, end + 2.0), 0.0);
    }

    #[test]
    fn host_gap_delays_stream() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        tl.host_gap(s, 500.0);
        tl.enqueue_kernel(s, &kernel(6));
        assert!(tl.kernels()[0].start_us >= 500.0);
    }

    #[test]
    fn host_spans_are_recorded_and_labelled() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        tl.host_span(s, "preprocess", 250.0);
        tl.enqueue_kernel(s, &kernel(6));
        tl.host_gap(s, 100.0);
        tl.host_span(s, "noop", 0.0); // non-positive: not recorded
        let spans = tl.host_spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].label, "preprocess");
        assert_eq!(spans[0].duration_us, 250.0);
        assert_eq!(spans[1].label, "host");
        assert!(spans[1].start_us >= tl.kernels()[0].start_us + tl.kernels()[0].duration_us);
    }

    #[test]
    fn span_seqs_count_per_stream_across_record_kinds() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s0 = tl.create_stream();
        let s1 = tl.create_stream();
        assert_eq!(tl.next_seq(s0), 0);
        tl.enqueue_h2d(s0, 1 << 20); // s0 seq 0
        tl.enqueue_kernel(s0, &kernel(6)); // s0 seq 1
        tl.enqueue_kernel(s1, &kernel(6)); // s1 seq 0
        tl.host_span(s0, "glue", 10.0); // s0 seq 2
        assert_eq!(tl.memcpys()[0].seq, 0);
        assert_eq!(tl.kernels()[0].seq, 1);
        assert_eq!(tl.kernels()[1].seq, 0);
        assert_eq!(tl.kernels()[1].stream, s1);
        assert_eq!(tl.host_spans()[0].seq, 2);
        assert_eq!(tl.next_seq(s0), 3);
        assert_eq!(tl.next_seq(s1), 1);
    }

    #[test]
    fn reset_rewinds_span_seqs() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        tl.enqueue_kernel(s, &kernel(6));
        tl.host_gap(s, 5.0);
        tl.reset();
        assert_eq!(tl.next_seq(s), 0);
        assert!(tl.host_spans().is_empty());
    }

    #[test]
    fn reset_clears_state() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s = tl.create_stream();
        tl.enqueue_kernel(s, &kernel(6));
        tl.reset();
        assert!(tl.kernels().is_empty());
        assert_eq!(tl.sync(s), 0.0);
    }

    #[test]
    fn batched_launch_beats_serial_launches() {
        let dev = DeviceSpec::xavier_nx();
        let mut serial = GpuTimeline::new(dev.clone());
        let mut batched = GpuTimeline::new(dev);
        let s1 = serial.create_stream();
        let s2 = batched.create_stream();
        for _ in 0..8 {
            serial.enqueue_kernel(s1, &kernel(6));
        }
        batched.enqueue_batched_kernel(s2, &kernel(6), 8);
        // One launch instead of eight: strictly earlier completion.
        assert!(batched.sync(s2) < serial.sync(s1));
        assert_eq!(batched.kernels().len(), 1);
        assert_eq!(batched.kernels()[0].grid_blocks, 8 * 6);
    }

    #[test]
    fn batch_of_one_is_the_plain_launch() {
        let dev = DeviceSpec::xavier_nx();
        let mut plain = GpuTimeline::new(dev.clone());
        let mut batched = GpuTimeline::new(dev);
        let s1 = plain.create_stream();
        let s2 = batched.create_stream();
        plain.enqueue_kernel(s1, &kernel(6));
        batched.enqueue_batched_kernel(s2, &kernel(6), 1);
        assert_eq!(plain.kernels(), batched.kernels());
    }

    #[test]
    fn late_streams_start_at_now() {
        let mut tl = GpuTimeline::new(DeviceSpec::xavier_nx());
        let s1 = tl.create_stream();
        let end = tl.enqueue_kernel(s1, &kernel(6));
        let s2 = tl.create_stream();
        assert!(tl.sync(s2) >= end);
    }
}
