//! The evaluation platforms: Jetson Xavier NX and Jetson Xavier AGX.
//!
//! Values follow the paper's Table I (`deviceQuery` output) plus calibrated
//! cost-model constants documented field by field. Both boards use the same
//! Volta GV10B microarchitecture, so per-core/per-clock behaviour is shared
//! and all modeled differences come from resource counts, clocks, memory, and
//! platform-specific transfer characteristics.

/// Which physical board a [`DeviceSpec`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Jetson Xavier NX (384 CUDA cores, 6 SMs, 8 GB LPDDR4x).
    Nx,
    /// Jetson Xavier AGX (512 CUDA cores, 8 SMs, 32 GB LPDDR4x).
    Agx,
}

impl Platform {
    /// Short label used in experiment tables ("NX"/"AGX").
    pub fn label(self) -> &'static str {
        match self {
            Platform::Nx => "NX",
            Platform::Agx => "AGX",
        }
    }

    /// Both platforms, in the order the paper tabulates them.
    pub fn all() -> [Platform; 2] {
        [Platform::Nx, Platform::Agx]
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full architectural description of a simulated device.
///
/// # Examples
///
/// ```
/// use trtsim_gpu::device::DeviceSpec;
/// let nx = DeviceSpec::xavier_nx();
/// assert_eq!(nx.sm_count, 6);
/// assert_eq!(nx.cuda_cores(), 384);
/// // The paper's latency experiments pin the clock near 600 MHz:
/// let pinned = nx.clone().with_clock_mhz(599.0);
/// assert!(pinned.fp16_tensor_tflops() < nx.fp16_tensor_tflops());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Board name.
    pub name: String,
    /// Which platform this is.
    pub platform: Platform,
    /// Streaming multiprocessor count (Table I: 6 / 8).
    pub sm_count: u32,
    /// CUDA cores per SM (64 on GV10B).
    pub cores_per_sm: u32,
    /// Tensor cores per SM (8 on GV10B).
    pub tensor_cores_per_sm: u32,
    /// L1 cache per SM in KiB (128).
    pub l1_kib_per_sm: u32,
    /// Shared L2 cache in KiB (512).
    pub l2_kib: u32,
    /// DRAM capacity in GiB (8 / 32).
    pub dram_gib: u32,
    /// Peak DRAM bandwidth in GB/s (51.2 / 137).
    pub dram_bandwidth_gbps: f64,
    /// Fraction of peak DRAM bandwidth realistically achievable by GPU
    /// streaming (calibrated; LPDDR4x on a shared SoC bus sustains ~70 %).
    pub dram_efficiency: f64,
    /// Memory bus width in bits (128 / 256).
    pub mem_bus_bits: u32,
    /// Current GPU clock in MHz. Defaults to the board maximum
    /// (1109.25 / 1377); the paper's latency experiments pin 599 / 624.
    pub gpu_clock_mhz: f64,
    /// Maximum GPU clock in MHz.
    pub max_gpu_clock_mhz: f64,
    /// Kernel launch overhead in µs (CUDA driver + Jetson command path;
    /// calibrated so per-layer launch costs dominate tiny kernels).
    pub kernel_launch_us: f64,
    /// Host-to-device copy setup latency in µs for pageable copies. The AGX
    /// carveout/SMMU path pays more per transfer — the paper's Table X
    /// memcpy anomaly.
    pub h2d_latency_us: f64,
    /// Effective pageable host-to-device copy bandwidth in GB/s. On Jetson
    /// the copy is DRAM-to-DRAM through the CPU, far below the DRAM peak;
    /// calibrated against the ~9 ms the paper observes for a 22.5 MB engine.
    pub h2d_bandwidth_gbps: f64,
    /// DRAM available to GPU allocations in GiB. On Jetson the CUDA carveout
    /// is far below the physical DRAM (OS, desktop, and the default
    /// allocation limits reserve the rest); calibrated against the thread
    /// counts of the paper's Figures 3/4, which stop at 28/36 and 16/24
    /// streams despite the AGX's 32 GiB.
    pub gpu_usable_dram_gib: f64,
    /// Highest GR3D utilization tegrastats reports under full multi-stream
    /// load (residual driver serialization keeps it below 1.0; the paper
    /// observes ≈0.82 on NX and ≈0.86 on AGX in Figures 3–4).
    pub max_gr3d_utilization: f64,
}

impl DeviceSpec {
    /// The Jetson Xavier NX of the paper's Table I.
    pub fn xavier_nx() -> Self {
        Self {
            name: "Jetson Xavier NX (GV10B)".to_string(),
            platform: Platform::Nx,
            sm_count: 6,
            cores_per_sm: 64,
            tensor_cores_per_sm: 8,
            l1_kib_per_sm: 128,
            l2_kib: 512,
            dram_gib: 8,
            dram_bandwidth_gbps: 51.2,
            dram_efficiency: 0.70,
            mem_bus_bits: 128,
            gpu_clock_mhz: 1109.25,
            max_gpu_clock_mhz: 1109.25,
            kernel_launch_us: 8.0,
            h2d_latency_us: 80.0,
            h2d_bandwidth_gbps: 2.60,
            gpu_usable_dram_gib: 5.4,
            max_gr3d_utilization: 0.821,
        }
    }

    /// The Jetson Xavier AGX of the paper's Table I.
    pub fn xavier_agx() -> Self {
        Self {
            name: "Jetson Xavier AGX (GV10B)".to_string(),
            platform: Platform::Agx,
            sm_count: 8,
            cores_per_sm: 64,
            tensor_cores_per_sm: 8,
            l1_kib_per_sm: 128,
            l2_kib: 512,
            dram_gib: 32,
            dram_bandwidth_gbps: 137.0,
            dram_efficiency: 0.70,
            mem_bus_bits: 256,
            gpu_clock_mhz: 1377.0,
            max_gpu_clock_mhz: 1377.0,
            kernel_launch_us: 8.0,
            // Wider bus but a heavier SMMU/carveout setup path per transfer.
            h2d_latency_us: 350.0,
            h2d_bandwidth_gbps: 2.55,
            gpu_usable_dram_gib: 7.6,
            max_gr3d_utilization: 0.862,
        }
    }

    /// A spec by platform at the paper's pinned latency-experiment clocks
    /// (599 MHz NX / 624 MHz AGX, §II-F). Pinning a Jetson to a low
    /// `nvpmodel` GPU frequency also pins the EMC (memory) clock far below
    /// its maximum, so the AGX's pinned-mode DRAM bandwidth sits just above
    /// the NX's rather than 2.7× higher — which is why the paper's latency
    /// tables show the two boards running neck and neck.
    pub fn pinned_clock(platform: Platform) -> Self {
        match platform {
            Platform::Nx => Self::xavier_nx().with_clock_mhz(599.0),
            Platform::Agx => Self::xavier_agx()
                .with_clock_mhz(624.0)
                .with_dram_bandwidth_gbps(59.4),
        }
    }

    /// A spec by platform at the board-maximum clock (used by the
    /// concurrency experiments, §IV-B).
    pub fn max_clock(platform: Platform) -> Self {
        match platform {
            Platform::Nx => Self::xavier_nx(),
            Platform::Agx => Self::xavier_agx(),
        }
    }

    /// Returns a copy with the given peak DRAM bandwidth (EMC pinning).
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not positive.
    pub fn with_dram_bandwidth_gbps(mut self, gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        self.dram_bandwidth_gbps = gbps;
        self
    }

    /// Returns a copy running at the given GPU clock.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not positive or exceeds the board maximum.
    pub fn with_clock_mhz(mut self, mhz: f64) -> Self {
        assert!(
            mhz > 0.0 && mhz <= self.max_gpu_clock_mhz,
            "clock {mhz} MHz outside (0, {}]",
            self.max_gpu_clock_mhz
        );
        self.gpu_clock_mhz = mhz;
        self
    }

    /// Total CUDA core count (Table I: 384 / 512).
    pub fn cuda_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// Total tensor core count (Table I: 48 / 64).
    pub fn tensor_cores(&self) -> u32 {
        self.sm_count * self.tensor_cores_per_sm
    }

    /// Peak FP32 throughput in TFLOP/s (2 FLOPs per core-cycle FMA).
    pub fn fp32_tflops(&self) -> f64 {
        f64::from(self.cuda_cores()) * 2.0 * self.gpu_clock_mhz * 1e6 / 1e12
    }

    /// Peak FP16 tensor-core throughput in TFLOP/s (128 FLOPs per
    /// tensor-core cycle on Volta HMMA).
    pub fn fp16_tensor_tflops(&self) -> f64 {
        f64::from(self.tensor_cores()) * 128.0 * self.gpu_clock_mhz * 1e6 / 1e12
    }

    /// Peak FP16 throughput without tensor cores (2× FP32 rate via
    /// half2 vectorization).
    pub fn fp16_cuda_tflops(&self) -> f64 {
        2.0 * self.fp32_tflops()
    }

    /// Peak INT8 throughput in TOP/s (DP4A: 8 ops per core-cycle).
    pub fn int8_tops(&self) -> f64 {
        f64::from(self.cuda_cores()) * 8.0 * self.gpu_clock_mhz * 1e6 / 1e12
    }

    /// Achievable DRAM bandwidth in bytes/µs.
    pub fn effective_dram_bytes_per_us(&self) -> f64 {
        self.dram_bandwidth_gbps * self.dram_efficiency * 1e9 / 1e6
    }

    /// L2 service bandwidth in bytes/µs. L2 throughput scales with SM count
    /// and clock (32 B/cycle per SM slice on Volta), *not* with DRAM width.
    pub fn l2_bytes_per_us(&self) -> f64 {
        f64::from(self.sm_count) * self.gpu_clock_mhz * 32.0
    }

    /// DRAM capacity usable by GPU allocations, in bytes.
    pub fn gpu_usable_dram_bytes(&self) -> u64 {
        (self.gpu_usable_dram_gib * (1u64 << 30) as f64) as u64
    }

    /// A 64-bit fingerprint of every field that feeds the kernel timing
    /// model ([`crate::timing`]). Two specs with equal fingerprints time any
    /// kernel identically, so the fingerprint is a sound memoization key for
    /// `kernel_time_us` results (the timing cache in `trtsim-core`). Clock
    /// changes, EMC pinning, and platform differences all change it.
    pub fn timing_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
            h = h.rotate_left(29);
        };
        fold(self.platform as u64);
        fold(u64::from(self.sm_count));
        fold(u64::from(self.cores_per_sm));
        fold(u64::from(self.tensor_cores_per_sm));
        fold(u64::from(self.l1_kib_per_sm));
        fold(u64::from(self.l2_kib));
        fold(self.dram_bandwidth_gbps.to_bits());
        fold(self.dram_efficiency.to_bits());
        fold(self.gpu_clock_mhz.to_bits());
        fold(self.kernel_launch_us.to_bits());
        h
    }

    /// Memory-latency constants in GPU cycles, used by the BSP model's
    /// micro-benchmarks (Volta-class figures).
    pub fn latency_cycles(&self) -> MemLatencies {
        MemLatencies {
            shared: 29.0,
            l1: 32.0,
            l2: 190.0,
            global: 360.0,
        }
    }

    /// Renders the Table I row for this device.
    pub fn table1_row(&self) -> String {
        format!(
            "{} | {} cores ({} per SM) | {} SMs | {} tensor cores | L1 {} KiB/SM | L2 {} KiB | {} GiB {}-bit LPDDR4x {:.1} GB/s | {:.3} GHz",
            self.name,
            self.cuda_cores(),
            self.cores_per_sm,
            self.sm_count,
            self.tensor_cores(),
            self.l1_kib_per_sm,
            self.l2_kib,
            self.dram_gib,
            self.mem_bus_bits,
            self.dram_bandwidth_gbps,
            self.max_gpu_clock_mhz / 1000.0,
        )
    }
}

/// Cache/memory access latencies in GPU cycles (BSP model inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemLatencies {
    /// Shared-memory access.
    pub shared: f64,
    /// L1 hit.
    pub l1: f64,
    /// L2 hit.
    pub l2: f64,
    /// DRAM access.
    pub global: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_counts_match_paper() {
        let nx = DeviceSpec::xavier_nx();
        let agx = DeviceSpec::xavier_agx();
        assert_eq!(nx.cuda_cores(), 384);
        assert_eq!(agx.cuda_cores(), 512);
        assert_eq!(nx.tensor_cores(), 48);
        assert_eq!(agx.tensor_cores(), 64);
        assert_eq!(nx.sm_count, 6);
        assert_eq!(agx.sm_count, 8);
        assert_eq!(nx.dram_gib, 8);
        assert_eq!(agx.dram_gib, 32);
    }

    #[test]
    fn agx_is_faster_at_peak() {
        let nx = DeviceSpec::xavier_nx();
        let agx = DeviceSpec::xavier_agx();
        assert!(agx.fp32_tflops() > nx.fp32_tflops());
        assert!(agx.fp16_tensor_tflops() > nx.fp16_tensor_tflops());
        assert!(agx.effective_dram_bytes_per_us() > nx.effective_dram_bytes_per_us());
    }

    #[test]
    fn pinned_clocks_match_experiment_setup() {
        assert_eq!(DeviceSpec::pinned_clock(Platform::Nx).gpu_clock_mhz, 599.0);
        assert_eq!(DeviceSpec::pinned_clock(Platform::Agx).gpu_clock_mhz, 624.0);
    }

    #[test]
    fn clock_scales_throughput_linearly() {
        let full = DeviceSpec::xavier_nx();
        let half = full.clone().with_clock_mhz(full.max_gpu_clock_mhz / 2.0);
        let ratio = full.fp16_tensor_tflops() / half.fp16_tensor_tflops();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn tensor_cores_dwarf_cuda_fp16() {
        let nx = DeviceSpec::xavier_nx();
        assert!(nx.fp16_tensor_tflops() > 2.0 * nx.fp16_cuda_tflops());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn overclock_rejected() {
        DeviceSpec::xavier_nx().with_clock_mhz(5000.0);
    }

    #[test]
    fn timing_fingerprint_tracks_timing_inputs() {
        let nx = DeviceSpec::xavier_nx();
        assert_eq!(nx.timing_fingerprint(), nx.clone().timing_fingerprint());
        assert_ne!(
            nx.timing_fingerprint(),
            DeviceSpec::xavier_agx().timing_fingerprint()
        );
        assert_ne!(
            nx.timing_fingerprint(),
            nx.clone().with_clock_mhz(599.0).timing_fingerprint()
        );
        assert_ne!(
            nx.timing_fingerprint(),
            nx.clone()
                .with_dram_bandwidth_gbps(40.0)
                .timing_fingerprint()
        );
        // The pinned-clock AGX differs from the max-clock AGX in both clock
        // and EMC bandwidth; the fingerprint must see it.
        assert_ne!(
            DeviceSpec::pinned_clock(Platform::Agx).timing_fingerprint(),
            DeviceSpec::max_clock(Platform::Agx).timing_fingerprint()
        );
    }

    #[test]
    fn agx_h2d_setup_is_costlier() {
        // Keeps the Table X anomaly reproducible: same engine copies slower
        // onto AGX despite the wider bus.
        assert!(DeviceSpec::xavier_agx().h2d_latency_us > DeviceSpec::xavier_nx().h2d_latency_us);
    }

    #[test]
    fn table1_row_mentions_key_numbers() {
        let row = DeviceSpec::xavier_nx().table1_row();
        assert!(row.contains("384") && row.contains("6 SMs") && row.contains("51.2"));
    }
}
