//! Property tests for the GPU timing, memcpy, and contention models.

use proptest::prelude::*;
use trtsim_gpu::contention::{max_threads, point_at, EngineProfile};
use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::kernel::{KernelDesc, Precision};
use trtsim_gpu::memcpy::{d2h_time_us, h2d_time_us};
use trtsim_gpu::timing::{compute_time_us, kernel_busy_us, l2_spill_fraction, memory_time_us};

fn devices() -> [DeviceSpec; 2] {
    [DeviceSpec::xavier_nx(), DeviceSpec::xavier_agx()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_times_are_finite_and_nonnegative(
        blocks in 1u64..100_000,
        threads in 1u32..1024,
        flops in 0u64..10_000_000_000,
        dram in 0u64..1_000_000_000,
        l2 in 0u64..1_000_000_000,
        ws in 0u64..1_000_000,
        eff_pct in 1u32..100,
    ) {
        let k = KernelDesc::new("k")
            .grid(blocks, threads)
            .flops(flops)
            .dram_bytes(dram)
            .l2_bytes(l2)
            .l2_working_set(ws)
            .precision(Precision::Fp16, true)
            .efficiency(f64::from(eff_pct) / 100.0);
        for dev in devices() {
            let t = kernel_busy_us(&k, &dev);
            prop_assert!(t.is_finite() && t >= 0.0);
            prop_assert!(t >= compute_time_us(&k, &dev).max(memory_time_us(&k, &dev)) - 1e-9);
        }
    }

    #[test]
    fn spill_fraction_is_a_fraction(
        blocks in 1u64..10_000,
        bpsm in 1u32..8,
        ws in 0u64..10_000_000,
    ) {
        let k = KernelDesc::new("k").grid(blocks, 128).occupancy(bpsm).l2_working_set(ws);
        for dev in devices() {
            let f = l2_spill_fraction(&k, &dev);
            prop_assert!((0.0..1.0).contains(&f) || (f - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn agx_spills_at_least_as_much_as_nx(
        blocks in 48u64..10_000, // grid fills both devices
        ws in 1u64..1_000_000,
    ) {
        // Same kernel, smaller per-SM L2 share on the 8-SM board.
        let k = KernelDesc::new("k").grid(blocks, 128).occupancy(1).l2_working_set(ws);
        let f_nx = l2_spill_fraction(&k, &DeviceSpec::xavier_nx());
        let f_agx = l2_spill_fraction(&k, &DeviceSpec::xavier_agx());
        prop_assert!(f_agx >= f_nx - 1e-12);
    }

    #[test]
    fn memcpy_monotone_and_agx_slower(a in 0u64..100_000_000, b in 0u64..100_000_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        for dev in devices() {
            prop_assert!(h2d_time_us(lo, &dev) <= h2d_time_us(hi, &dev));
            prop_assert!(d2h_time_us(lo, &dev) <= d2h_time_us(hi, &dev));
        }
        prop_assert!(h2d_time_us(hi, &DeviceSpec::xavier_agx()) > h2d_time_us(hi, &DeviceSpec::xavier_nx()));
    }

    #[test]
    fn concurrency_points_are_sane(
        busy in 100.0f64..50_000.0,
        gap in 100.0f64..50_000.0,
        dram_mb in 1u64..200,
        act_mb in 10u64..2_000,
    ) {
        let profile = EngineProfile {
            busy_us: busy,
            gap_us: gap,
            dram_bytes: dram_mb << 20,
            activation_bytes: act_mb << 20,
            weight_bytes: 16 << 20,
        };
        for dev in devices() {
            let (n_max, _) = max_threads(&profile, &dev);
            prop_assert!(n_max >= 1);
            let p1 = point_at(&profile, &dev, 1);
            let p_last = point_at(&profile, &dev, n_max);
            prop_assert!(p1.fps > 0.0 && p1.fps.is_finite());
            prop_assert!(p_last.utilization <= dev.max_gr3d_utilization + 1e-9);
            prop_assert!(p_last.utilization >= 0.0);
            // Single-stream utilization can never exceed the busy fraction.
            prop_assert!(p1.utilization <= profile.utilization_single() * 1.3 + 1e-9);
        }
    }
}
