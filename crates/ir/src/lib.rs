//! Neural-network intermediate representation and reference executor.
//!
//! This crate plays the role of the *framework layer* in the paper's stack
//! (level 4 of its Figure 1): it can describe a trained network — layers,
//! weights, connectivity — and execute it layer-by-layer in FP32, exactly the
//! "un-optimized" path that the paper benchmarks TensorRT against.
//!
//! The TensorRT-like engine in `trtsim-core` consumes graphs defined here,
//! rewrites them (dead-layer removal, fusion, quantization) and maps them onto
//! the simulated GPU's kernel catalog.
//!
//! # Design notes
//!
//! * Tensors are batch-1 CHW, matching the paper's single-image inference
//!   measurements; batching is expressed by repeated enqueues.
//! * Numeric data is stored as `f32` even for reduced-precision tensors; the
//!   engine applies FP16/INT8 *rounding* at kernel boundaries (the standard
//!   "fake quantization" formulation), which reproduces precision effects
//!   while keeping a single data path.
//! * Weights can be **dense** (real numbers, used by the accuracy experiments)
//!   or **seeded** (a deterministic generator plus a length, used by the
//!   full-size model descriptors where materializing hundreds of MB of weights
//!   would be wasteful). See [`weights::Weights`].
//!
//! # Examples
//!
//! ```
//! use trtsim_ir::graph::{Graph, LayerKind};
//! use trtsim_ir::tensor::Tensor;
//!
//! let mut g = Graph::new("tiny", [3, 8, 8]);
//! let conv = g.add_layer(
//!     "conv1",
//!     LayerKind::conv_seeded(4, 3, 3, 1, 1, 42),
//!     &[Graph::INPUT],
//! );
//! g.mark_output(conv);
//! g.validate().unwrap();
//!
//! let out = trtsim_ir::exec::ReferenceExecutor::new(&g)
//!     .unwrap()
//!     .run(&Tensor::zeros([3, 8, 8]))
//!     .unwrap();
//! assert_eq!(out[0].shape(), [4, 8, 8]);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod error;
pub mod exec;
pub mod flops;
pub mod graph;
pub mod layout;
pub mod liveness;
pub mod ops;
pub mod shape;
pub mod tensor;
pub mod weights;

pub use arena::TensorArena;
pub use error::IrError;
pub use exec::ReferenceExecutor;
pub use graph::{Activation, Graph, LayerKind, Node, NodeId, PoolKind};
pub use layout::Layout;
pub use liveness::Liveness;
pub use tensor::Tensor;
pub use weights::Weights;
