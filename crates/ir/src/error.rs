//! Error types for graph construction, validation, and execution.

use std::fmt;

/// Errors produced while building, validating, or executing an IR graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A node references an input id that does not exist in the graph.
    DanglingInput {
        /// Node whose input list is invalid.
        node: String,
        /// The missing input id.
        input: usize,
    },
    /// A layer received the wrong number of inputs.
    ArityMismatch {
        /// Offending node name.
        node: String,
        /// Inputs the layer requires.
        expected: usize,
        /// Inputs the node was given.
        actual: usize,
    },
    /// Input tensor shape is incompatible with the layer's parameters.
    ShapeMismatch {
        /// Offending node name.
        node: String,
        /// Human-readable description of the incompatibility.
        detail: String,
    },
    /// A weight blob has the wrong number of elements.
    WeightSizeMismatch {
        /// Offending node name.
        node: String,
        /// Elements the layer requires.
        expected: usize,
        /// Elements present.
        actual: usize,
    },
    /// The graph has no output nodes marked.
    NoOutputs,
    /// Numeric execution was requested but the layer has seeded (virtual)
    /// weights too large to materialize, or an op lacks a numeric kernel.
    NotExecutable {
        /// Offending node name.
        node: String,
        /// Why it cannot run numerically.
        detail: String,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DanglingInput { node, input } => {
                write!(f, "node `{node}` references nonexistent input {input}")
            }
            IrError::ArityMismatch {
                node,
                expected,
                actual,
            } => write!(f, "node `{node}` expects {expected} inputs, got {actual}"),
            IrError::ShapeMismatch { node, detail } => {
                write!(f, "shape mismatch at `{node}`: {detail}")
            }
            IrError::WeightSizeMismatch {
                node,
                expected,
                actual,
            } => write!(
                f,
                "node `{node}` expects {expected} weight elements, got {actual}"
            ),
            IrError::NoOutputs => write!(f, "graph has no output nodes"),
            IrError::NotExecutable { node, detail } => {
                write!(f, "node `{node}` is not numerically executable: {detail}")
            }
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = IrError::ShapeMismatch {
            node: "conv1".into(),
            detail: "3 channels vs 4 expected".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("conv1") && msg.contains("3 channels"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<IrError>();
    }
}
