//! Layer-by-layer FP32 reference executor — the paper's "un-optimized" path.
//!
//! This mirrors how a framework (Caffe/TensorFlow/Darknet in the paper's
//! Table II) runs inference without an inference engine: every layer is a
//! separate operation on freshly materialized tensors, with no fusion and no
//! reduced precision. Its outputs define ground-truth semantics for the
//! optimized engine.

use std::borrow::Cow;

use crate::error::IrError;
use crate::graph::{Graph, LayerKind, NodeId};
use crate::liveness::Liveness;
use crate::ops;
use crate::tensor::Tensor;
use crate::weights::{Weights, MATERIALIZE_LIMIT};

/// Materialized `(weights, bias)` for one Conv/InnerProduct layer. Dense
/// weights borrow the graph's blob; seeded weights are generated once.
type PreparedWeights<'g> = (Cow<'g, [f32]>, Vec<f32>);

/// Executes a validated graph in FP32, one layer at a time.
///
/// # Examples
///
/// ```
/// use trtsim_ir::graph::{Graph, LayerKind};
/// use trtsim_ir::{ReferenceExecutor, Tensor};
///
/// let mut g = Graph::new("m", [1, 4, 4]);
/// let id = g.add_layer("id", LayerKind::Identity, &[Graph::INPUT]);
/// g.mark_output(id);
/// let exec = ReferenceExecutor::new(&g).unwrap();
/// let input = Tensor::zeros([1, 4, 4]);
/// let outs = exec.run(&input).unwrap();
/// assert_eq!(outs[0], input);
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceExecutor<'g> {
    graph: &'g Graph,
    shapes: Vec<[usize; 3]>,
    liveness: Liveness,
    /// Per node: materialized weights for Conv/InnerProduct layers, hoisted
    /// out of the per-image loop.
    prepared: Vec<Option<PreparedWeights<'g>>>,
}

impl<'g> ReferenceExecutor<'g> {
    /// Validates the graph, prepares shape information, and materializes all
    /// layer weights once so repeated [`ReferenceExecutor::run`] calls pay no
    /// per-image weight generation.
    ///
    /// # Errors
    ///
    /// Returns any validation error ([`IrError`]) the graph carries, plus
    /// [`IrError::NotExecutable`] if a layer's seeded weights are too large to
    /// materialize.
    pub fn new(graph: &'g Graph) -> Result<Self, IrError> {
        graph.validate()?;
        let shapes = graph.infer_shapes()?;
        for node in graph.nodes() {
            let weights_len = match &node.kind {
                LayerKind::Conv(c) => c.weights.len(),
                LayerKind::InnerProduct { weights, .. } => weights.len(),
                _ => 0,
            };
            if weights_len > MATERIALIZE_LIMIT {
                return Err(IrError::NotExecutable {
                    node: node.name.clone(),
                    detail: format!(
                        "{weights_len} weights exceed the materialization limit; \
                         use the numeric-scale variant of this model"
                    ),
                });
            }
        }
        let prepared = graph
            .nodes()
            .iter()
            .map(|node| match &node.kind {
                LayerKind::Conv(c) => Some((c.weights.materialize(), materialize_bias(&c.bias))),
                LayerKind::InnerProduct { weights, bias, .. } => {
                    Some((weights.materialize(), materialize_bias(bias)))
                }
                _ => None,
            })
            .collect();
        Ok(Self {
            graph,
            shapes,
            liveness: Liveness::analyze(graph),
            prepared,
        })
    }

    /// The graph being executed.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Inferred output shape of every node.
    pub fn shapes(&self) -> &[[usize; 3]] {
        &self.shapes
    }

    /// The liveness analysis of the graph (last use per value).
    pub fn liveness(&self) -> &Liveness {
        &self.liveness
    }

    /// Runs the network on one input image, returning the marked outputs in
    /// marking order.
    ///
    /// Intermediate activations are dropped at their liveness-determined last
    /// use, so a deep chain holds only the producer/consumer pair in flight
    /// rather than every layer's output.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ShapeMismatch`] if the input does not match the
    /// graph's declared input shape.
    pub fn run(&self, input: &Tensor) -> Result<Vec<Tensor>, IrError> {
        self.check_input(input)?;
        let mut values: Vec<Option<Tensor>> = vec![None; self.graph.len()];
        values[Graph::INPUT] = Some(input.clone());
        for node in self.graph.nodes().iter().skip(1) {
            let out = self.eval_node(node.id, &values)?;
            values[node.id] = Some(out);
            for &dead in self.liveness.dead_after(node.id) {
                values[dead] = None;
            }
        }
        Ok(self
            .graph
            .outputs()
            .iter()
            .map(|&id| values[id].take().expect("output computed"))
            .collect())
    }

    /// Runs the network and returns every node's activation (None for values
    /// consumed by outputs via [`ReferenceExecutor::run`]'s take; here all are
    /// present). Useful for per-layer debugging and calibration.
    ///
    /// # Errors
    ///
    /// Same as [`ReferenceExecutor::run`].
    pub fn run_trace(&self, input: &Tensor) -> Result<Vec<Tensor>, IrError> {
        let values = self.run_all(input)?;
        Ok(values
            .into_iter()
            .map(|v| v.expect("all computed"))
            .collect())
    }

    fn check_input(&self, input: &Tensor) -> Result<(), IrError> {
        if input.shape() != self.graph.input_shape() {
            return Err(IrError::ShapeMismatch {
                node: "input".to_string(),
                detail: format!(
                    "expected {:?}, got {:?}",
                    self.graph.input_shape(),
                    input.shape()
                ),
            });
        }
        Ok(())
    }

    fn run_all(&self, input: &Tensor) -> Result<Vec<Option<Tensor>>, IrError> {
        self.check_input(input)?;
        let mut values: Vec<Option<Tensor>> = vec![None; self.graph.len()];
        values[Graph::INPUT] = Some(input.clone());
        for node in self.graph.nodes().iter().skip(1) {
            let out = self.eval_node(node.id, &values)?;
            values[node.id] = Some(out);
        }
        Ok(values)
    }

    fn eval_node(&self, id: NodeId, values: &[Option<Tensor>]) -> Result<Tensor, IrError> {
        let node = self.graph.node(id);
        let input = |i: usize| -> &Tensor {
            values[node.inputs[i]]
                .as_ref()
                .expect("topological order guarantees producers are computed")
        };
        let out = match &node.kind {
            LayerKind::Input => unreachable!("input handled by run_all"),
            LayerKind::Conv(c) => {
                let (w, b) = self.prepared[id].as_ref().expect("conv weights prepared");
                ops::conv2d(input(0), w, b, c)
            }
            LayerKind::Pool {
                kind,
                kernel,
                stride,
                pad,
            } => ops::pool2d(input(0), *kind, *kernel, *stride, *pad),
            LayerKind::GlobalPool { kind } => ops::global_pool(input(0), *kind),
            LayerKind::InnerProduct {
                out_features,
                activation,
                ..
            } => {
                let (w, b) = self.prepared[id].as_ref().expect("fc weights prepared");
                ops::inner_product(input(0), w, b, *out_features, *activation)
            }
            LayerKind::Act(a) => ops::activate(input(0), *a),
            LayerKind::BatchNorm {
                mean,
                var,
                gamma,
                beta,
                eps,
            } => ops::batch_norm(input(0), mean, var, gamma, beta, *eps),
            LayerKind::Scale { scale, bias } => ops::scale(input(0), scale, bias),
            LayerKind::Lrn {
                local_size,
                alpha,
                beta,
                k,
            } => ops::lrn(input(0), *local_size, *alpha, *beta, *k),
            LayerKind::Eltwise { op } => {
                let ins: Vec<&Tensor> = (0..node.inputs.len()).map(input).collect();
                ops::eltwise(&ins, *op)
            }
            LayerKind::Concat => {
                let ins: Vec<&Tensor> = (0..node.inputs.len()).map(input).collect();
                ops::concat(&ins)
            }
            LayerKind::Softmax => ops::softmax(input(0)),
            LayerKind::Upsample { factor } => ops::upsample(input(0), *factor),
            LayerKind::Flatten => input(0).clone().into_flat(),
            LayerKind::Slice { begin, len } => ops::slice_channels(input(0), *begin, *len),
            LayerKind::Dropout { .. } | LayerKind::Identity => input(0).clone(),
        };
        debug_assert_eq!(
            out.shape(),
            self.shapes[id],
            "shape inference disagrees at {id}"
        );
        Ok(out)
    }
}

fn materialize_bias(bias: &Weights) -> Vec<f32> {
    bias.iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EltwiseOp, PoolKind};
    use trtsim_util::rng::Pcg32;

    fn small_net() -> Graph {
        let mut g = Graph::new("small", [3, 8, 8]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(4, 3, 3, 1, 1, 10),
            &[Graph::INPUT],
        );
        let p1 = g.add_layer(
            "p1",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let c2a = g.add_layer("c2a", LayerKind::conv_seeded(4, 4, 3, 1, 1, 11), &[p1]);
        let c2b = g.add_layer("c2b", LayerKind::conv_seeded(4, 4, 1, 1, 0, 12), &[p1]);
        let add = g.add_layer(
            "add",
            LayerKind::Eltwise { op: EltwiseOp::Sum },
            &[c2a, c2b],
        );
        let gp = g.add_layer(
            "gp",
            LayerKind::GlobalPool {
                kind: PoolKind::Avg,
            },
            &[add],
        );
        let fc = g.add_layer("fc", LayerKind::fc_seeded(5, 4, 13), &[gp]);
        let sm = g.add_layer("sm", LayerKind::Softmax, &[fc]);
        g.mark_output(sm);
        g
    }

    fn random_input(shape: [usize; 3], seed: u64) -> Tensor {
        let mut rng = Pcg32::seed_from_u64(seed);
        Tensor::from_fn(shape, |_, _, _| rng.normal() as f32)
    }

    #[test]
    fn runs_branching_network() {
        let g = small_net();
        let exec = ReferenceExecutor::new(&g).unwrap();
        let out = exec.run(&random_input([3, 8, 8], 1)).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].shape(), [5, 1, 1]);
        let sum: f32 = out[0].as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn execution_is_deterministic() {
        let g = small_net();
        let exec = ReferenceExecutor::new(&g).unwrap();
        let input = random_input([3, 8, 8], 2);
        let a = exec.run(&input).unwrap();
        let b = exec.run(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trace_exposes_every_layer() {
        let g = small_net();
        let exec = ReferenceExecutor::new(&g).unwrap();
        let trace = exec.run_trace(&random_input([3, 8, 8], 3)).unwrap();
        assert_eq!(trace.len(), g.len());
        for (t, s) in trace.iter().zip(exec.shapes()) {
            assert_eq!(t.shape(), *s);
        }
    }

    #[test]
    fn liveness_driven_run_matches_keep_everything_trace() {
        let g = small_net();
        let exec = ReferenceExecutor::new(&g).unwrap();
        let input = random_input([3, 8, 8], 9);
        let freed = exec.run(&input).unwrap();
        let trace = exec.run_trace(&input).unwrap();
        for (out, &id) in freed.iter().zip(g.outputs()) {
            assert_eq!(out, &trace[id]);
        }
    }

    #[test]
    fn wrong_input_shape_is_reported() {
        let g = small_net();
        let exec = ReferenceExecutor::new(&g).unwrap();
        let err = exec.run(&Tensor::zeros([3, 9, 9])).unwrap_err();
        assert!(matches!(err, IrError::ShapeMismatch { .. }));
    }

    #[test]
    fn invalid_graph_is_rejected_at_construction() {
        let mut g = Graph::new("bad", [3, 8, 8]);
        // conv expecting 4 channels fed with a 3-channel input
        let c = g.add_layer(
            "c",
            LayerKind::conv_seeded(4, 4, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        g.mark_output(c);
        assert!(ReferenceExecutor::new(&g).is_err());
    }

    #[test]
    fn oversized_seeded_weights_not_executable() {
        let mut g = Graph::new("huge", [3, 8, 8]);
        let c = g.add_layer(
            "c",
            LayerKind::Conv(crate::graph::ConvParams {
                out_channels: 8192,
                in_channels: 3,
                kernel_h: 64,
                kernel_w: 64,
                stride: 1,
                pad_h: 32,
                pad_w: 32,
                groups: 1,
                weights: Weights::Seeded {
                    seed: 0,
                    len: 8192 * 3 * 64 * 64,
                    scale: 0.01,
                },
                bias: Weights::Dense(vec![]),
                activation: None,
            }),
            &[Graph::INPUT],
        );
        g.mark_output(c);
        let err = ReferenceExecutor::new(&g).unwrap_err();
        assert!(matches!(err, IrError::NotExecutable { .. }));
    }
}
