//! Weight storage: dense blobs or deterministic seeded generators.
//!
//! The paper's 13 networks range from 1.9 MB (MTCNN) to 527 MB (VGG-16) of
//! FP32 weights. The performance experiments only need weight *shapes and
//! sizes*, while the accuracy experiments need real numbers on (smaller)
//! numeric models. [`Weights`] supports both: a `Dense` variant holding real
//! values and a `Seeded` variant that can stream deterministic pseudo-weights
//! of any length without storing them.

use std::borrow::Cow;

use trtsim_util::rng::Pcg32;

/// Threshold above which [`Weights::materialize`] refuses to allocate for
/// seeded weights (prevents a stray numeric run from allocating gigabytes).
pub const MATERIALIZE_LIMIT: usize = 64 << 20; // 64M elements = 256 MB

/// A layer's learned parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum Weights {
    /// Real values, fully in memory.
    Dense(Vec<f32>),
    /// Deterministic virtual weights: `len` values drawn from a seeded
    /// Gaussian stream scaled by `scale`. Two `Seeded` weights with the same
    /// seed and length stream identical values.
    Seeded {
        /// Stream seed.
        seed: u64,
        /// Number of weight elements.
        len: usize,
        /// Standard deviation of generated values (He/Xavier-style scale).
        scale: f32,
    },
}

impl Weights {
    /// Creates seeded weights with a typical He-initialization scale for the
    /// given fan-in.
    pub fn seeded_he(seed: u64, len: usize, fan_in: usize) -> Self {
        let scale = (2.0 / fan_in.max(1) as f64).sqrt() as f32;
        Weights::Seeded { seed, len, scale }
    }

    /// Number of weight elements.
    pub fn len(&self) -> usize {
        match self {
            Weights::Dense(v) => v.len(),
            Weights::Seeded { len, .. } => *len,
        }
    }

    /// Whether there are no weights.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Streams the weight values without necessarily materializing them.
    pub fn iter(&self) -> WeightsIter<'_> {
        match self {
            Weights::Dense(v) => WeightsIter::Dense(v.iter()),
            Weights::Seeded { seed, len, scale } => WeightsIter::Seeded {
                rng: Pcg32::seed_from_u64(*seed),
                remaining: *len,
                scale: *scale,
            },
        }
    }

    /// Returns the values as a slice, generating seeded weights if needed.
    ///
    /// # Panics
    ///
    /// Panics if seeded weights exceed [`MATERIALIZE_LIMIT`] elements — the
    /// full-size model descriptors are not meant to be executed numerically.
    pub fn materialize(&self) -> Cow<'_, [f32]> {
        match self {
            Weights::Dense(v) => Cow::Borrowed(v),
            Weights::Seeded { len, .. } => {
                assert!(
                    *len <= MATERIALIZE_LIMIT,
                    "refusing to materialize {len} seeded weights; \
                     use a numeric-scale model for execution"
                );
                Cow::Owned(self.iter().collect())
            }
        }
    }

    /// Maximum absolute value, streamed (no allocation for seeded weights).
    pub fn amax(&self) -> f32 {
        self.iter().fold(0.0f32, |acc, x| acc.max(x.abs()))
    }

    /// Sum of absolute values, streamed. Used by pruning statistics.
    pub fn l1_norm(&self) -> f64 {
        self.iter().map(|x| f64::from(x.abs())).sum()
    }

    /// Applies `f` element-wise, producing dense weights.
    ///
    /// For seeded weights this materializes first (subject to
    /// [`MATERIALIZE_LIMIT`]); transformations on full-size descriptors should
    /// instead be recorded as metadata by the engine builder.
    ///
    /// # Panics
    ///
    /// See [`Weights::materialize`].
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Weights {
        Weights::Dense(self.iter().map(f).collect())
    }

    /// Uniformly samples up to `n` weight values (deterministic in `seed`),
    /// used for calibration-style statistics on large blobs.
    pub fn sample(&self, n: usize, seed: u64) -> Vec<f32> {
        let len = self.len();
        if len == 0 {
            return Vec::new();
        }
        if len <= n {
            return self.iter().collect();
        }
        // Sorted reservoir-free sampling: pick n sorted random indices and
        // stream past them.
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..n).map(|_| rng.range_usize(len)).collect();
        indices.sort_unstable();
        indices.dedup();
        let mut out = Vec::with_capacity(indices.len());
        let mut want = indices.iter().copied().peekable();
        for (i, v) in self.iter().enumerate() {
            match want.peek() {
                Some(&idx) if idx == i => {
                    out.push(v);
                    want.next();
                }
                None => break,
                _ => {}
            }
        }
        out
    }
}

impl From<Vec<f32>> for Weights {
    fn from(v: Vec<f32>) -> Self {
        Weights::Dense(v)
    }
}

/// Iterator over weight values; see [`Weights::iter`].
#[derive(Debug, Clone)]
pub enum WeightsIter<'a> {
    /// Iterating a dense blob.
    Dense(std::slice::Iter<'a, f32>),
    /// Streaming from the seeded generator.
    Seeded {
        /// Generator state.
        rng: Pcg32,
        /// Values left to produce.
        remaining: usize,
        /// Output scale.
        scale: f32,
    },
}

impl Iterator for WeightsIter<'_> {
    type Item = f32;

    fn next(&mut self) -> Option<f32> {
        match self {
            WeightsIter::Dense(it) => it.next().copied(),
            WeightsIter::Seeded {
                rng,
                remaining,
                scale,
            } => {
                if *remaining == 0 {
                    return None;
                }
                *remaining -= 1;
                Some(rng.normal() as f32 * *scale)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match self {
            WeightsIter::Dense(it) => it.len(),
            WeightsIter::Seeded { remaining, .. } => *remaining,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for WeightsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_weights_are_reproducible() {
        let w = Weights::Seeded {
            seed: 9,
            len: 100,
            scale: 0.1,
        };
        let a: Vec<f32> = w.iter().collect();
        let b: Vec<f32> = w.iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn seeded_scale_controls_magnitude() {
        let small = Weights::Seeded {
            seed: 1,
            len: 1000,
            scale: 0.01,
        };
        let large = Weights::Seeded {
            seed: 1,
            len: 1000,
            scale: 1.0,
        };
        assert!(small.amax() < large.amax());
        assert!((small.amax() - large.amax() * 0.01).abs() < 1e-5);
    }

    #[test]
    fn dense_round_trips() {
        let w: Weights = vec![1.0, -2.0, 3.0].into();
        assert_eq!(w.len(), 3);
        assert_eq!(w.amax(), 3.0);
        assert_eq!(w.materialize().as_ref(), &[1.0, -2.0, 3.0]);
    }

    #[test]
    fn map_produces_dense() {
        let w = Weights::Seeded {
            seed: 2,
            len: 10,
            scale: 1.0,
        };
        let doubled = w.map(|x| 2.0 * x);
        let orig: Vec<f32> = w.iter().collect();
        let got = doubled.materialize();
        for (o, g) in orig.iter().zip(got.iter()) {
            assert_eq!(*g, 2.0 * o);
        }
    }

    #[test]
    fn sample_is_subset_and_deterministic() {
        let w = Weights::Seeded {
            seed: 3,
            len: 10_000,
            scale: 1.0,
        };
        let s1 = w.sample(64, 7);
        let s2 = w.sample(64, 7);
        assert_eq!(s1, s2);
        assert!(!s1.is_empty() && s1.len() <= 64);
        let all: Vec<f32> = w.iter().collect();
        assert!(s1.iter().all(|v| all.contains(v)));
    }

    #[test]
    fn sample_of_small_blob_is_everything() {
        let w: Weights = vec![1.0, 2.0].into();
        assert_eq!(w.sample(10, 0), vec![1.0, 2.0]);
    }

    #[test]
    fn he_scale_shrinks_with_fan_in() {
        let a = Weights::seeded_he(0, 10, 9);
        let b = Weights::seeded_he(0, 10, 900);
        match (a, b) {
            (Weights::Seeded { scale: sa, .. }, Weights::Seeded { scale: sb, .. }) => {
                assert!(sa > sb);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "refusing to materialize")]
    fn oversized_materialize_panics() {
        Weights::Seeded {
            seed: 0,
            len: MATERIALIZE_LIMIT + 1,
            scale: 1.0,
        }
        .materialize();
    }

    #[test]
    fn iterator_len_is_exact() {
        let w = Weights::Seeded {
            seed: 5,
            len: 17,
            scale: 1.0,
        };
        assert_eq!(w.iter().len(), 17);
        assert_eq!(w.iter().count(), 17);
    }
}
