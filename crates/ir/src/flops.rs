//! Per-layer compute and memory-traffic accounting.
//!
//! The GPU timing model, the BSP performance model, and the Table II size
//! report all consume these numbers. Conventions: one multiply-accumulate is
//! two FLOPs; element counts are converted to bytes by the precision in force
//! when a kernel is generated (this module reports *elements*).

use crate::graph::{Graph, LayerKind, NodeId};
use crate::IrError;

/// Work and traffic of one layer at a given input shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerCost {
    /// Multiply-accumulate count.
    pub macs: u64,
    /// Non-MAC arithmetic operations (activations, normalization maths…).
    pub other_ops: u64,
    /// Elements read from activations.
    pub input_elems: u64,
    /// Elements written to the output activation.
    pub output_elems: u64,
    /// Weight elements read.
    pub weight_elems: u64,
}

impl LayerCost {
    /// Total floating-point operations (2 per MAC plus the rest).
    pub fn flops(&self) -> u64 {
        2 * self.macs + self.other_ops
    }

    /// Accumulates another cost (used for fused nodes).
    pub fn merge(&mut self, other: &LayerCost) {
        self.macs += other.macs;
        self.other_ops += other.other_ops;
        self.input_elems += other.input_elems;
        self.output_elems += other.output_elems;
        self.weight_elems += other.weight_elems;
    }
}

/// Computes the cost of a layer given input and output shapes.
pub fn layer_cost(kind: &LayerKind, inputs: &[[usize; 3]], output: [usize; 3]) -> LayerCost {
    let elems = |s: [usize; 3]| (s[0] * s[1] * s[2]) as u64;
    let in_total: u64 = inputs.iter().copied().map(elems).sum();
    let out_total = elems(output);
    let mut cost = LayerCost {
        input_elems: in_total,
        output_elems: out_total,
        ..LayerCost::default()
    };
    match kind {
        LayerKind::Input
        | LayerKind::Flatten
        | LayerKind::Slice { .. }
        | LayerKind::Dropout { .. }
        | LayerKind::Identity => {}
        LayerKind::Conv(c) => {
            let per_output = (c.in_channels / c.groups) * c.kernel_h * c.kernel_w;
            cost.macs = out_total * per_output as u64;
            cost.weight_elems = c.weights.len() as u64 + c.bias.len() as u64;
            if c.activation.is_some() {
                cost.other_ops = out_total;
            }
        }
        LayerKind::Pool { kernel, .. } => {
            cost.other_ops = out_total * (*kernel * *kernel) as u64;
        }
        LayerKind::GlobalPool { .. } => {
            cost.other_ops = in_total;
        }
        LayerKind::InnerProduct {
            weights,
            bias,
            activation,
            ..
        } => {
            cost.macs = weights.len() as u64;
            cost.weight_elems = weights.len() as u64 + bias.len() as u64;
            if activation.is_some() {
                cost.other_ops = out_total;
            }
        }
        LayerKind::Act(_) => cost.other_ops = out_total,
        LayerKind::BatchNorm { .. } => {
            // (x - mean) * inv_std * gamma + beta ≈ 4 ops/elem
            cost.other_ops = 4 * out_total;
            cost.weight_elems = 4 * output[0] as u64;
        }
        LayerKind::Scale { .. } => {
            cost.other_ops = 2 * out_total;
            cost.weight_elems = 2 * output[0] as u64;
        }
        LayerKind::Lrn { local_size, .. } => {
            // square + window sum + powf + divide
            cost.other_ops = out_total * (*local_size as u64 + 3);
        }
        LayerKind::Eltwise { .. } => {
            cost.other_ops = in_total;
        }
        LayerKind::Concat => {
            // pure data movement
        }
        LayerKind::Softmax => {
            cost.other_ops = 4 * out_total; // max, exp, sum, divide
        }
        LayerKind::Upsample { .. } => {}
    }
    cost
}

/// Cost of every node in a graph, indexed by [`NodeId`].
///
/// # Errors
///
/// Propagates shape-inference errors.
pub fn graph_costs(graph: &Graph) -> Result<Vec<LayerCost>, IrError> {
    let shapes = graph.infer_shapes()?;
    Ok(graph
        .nodes()
        .iter()
        .map(|node| {
            let ins: Vec<[usize; 3]> = node.inputs.iter().map(|&i| shapes[i]).collect();
            layer_cost(&node.kind, &ins, shapes[node.id])
        })
        .collect())
}

/// Total MACs of a full forward pass.
///
/// # Errors
///
/// Propagates shape-inference errors.
pub fn total_macs(graph: &Graph) -> Result<u64, IrError> {
    Ok(graph_costs(graph)?.iter().map(|c| c.macs).sum())
}

/// The heaviest-compute nodes of a graph, descending by MACs; useful for
/// choosing which layers get autotuned first.
///
/// # Errors
///
/// Propagates shape-inference errors.
pub fn heaviest_nodes(graph: &Graph, n: usize) -> Result<Vec<(NodeId, LayerCost)>, IrError> {
    let costs = graph_costs(graph)?;
    let mut indexed: Vec<(NodeId, LayerCost)> = costs.into_iter().enumerate().collect();
    indexed.sort_by_key(|(_, c)| std::cmp::Reverse(c.macs));
    indexed.truncate(n);
    Ok(indexed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, LayerKind, PoolKind};

    #[test]
    fn conv_macs_match_formula() {
        let k = LayerKind::conv_seeded(16, 3, 3, 1, 1, 0);
        let cost = layer_cost(&k, &[[3, 32, 32]], [16, 32, 32]);
        assert_eq!(cost.macs, 16 * 32 * 32 * 3 * 3 * 3);
        assert_eq!(cost.weight_elems, (16 * 3 * 3 * 3 + 16) as u64);
        assert_eq!(cost.flops(), 2 * cost.macs + 16 * 32 * 32);
    }

    #[test]
    fn depthwise_macs_shrink_by_groups() {
        let mut params = match LayerKind::conv_seeded(16, 16, 3, 1, 1, 0) {
            LayerKind::Conv(c) => c,
            _ => unreachable!(),
        };
        params.groups = 16;
        params.weights = crate::weights::Weights::Seeded {
            seed: 0,
            len: 16 * 9,
            scale: 0.1,
        };
        let cost = layer_cost(&LayerKind::Conv(params), &[[16, 8, 8]], [16, 8, 8]);
        assert_eq!(cost.macs, 16 * 8 * 8 * 9);
    }

    #[test]
    fn fc_macs_equal_weight_count() {
        let k = LayerKind::fc_seeded(10, 100, 0);
        let cost = layer_cost(&k, &[[100, 1, 1]], [10, 1, 1]);
        assert_eq!(cost.macs, 1000);
    }

    #[test]
    fn concat_has_no_arithmetic() {
        let cost = layer_cost(&LayerKind::Concat, &[[4, 2, 2], [4, 2, 2]], [8, 2, 2]);
        assert_eq!(cost.macs, 0);
        assert_eq!(cost.other_ops, 0);
        assert_eq!(cost.input_elems, 32);
    }

    #[test]
    fn graph_costs_align_with_nodes() {
        let mut g = Graph::new("t", [3, 16, 16]);
        let c = g.add_layer(
            "c",
            LayerKind::conv_seeded(8, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let p = g.add_layer(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c],
        );
        g.mark_output(p);
        let costs = graph_costs(&g).unwrap();
        assert_eq!(costs.len(), 3);
        assert_eq!(costs[0].macs, 0);
        assert!(costs[1].macs > 0);
        assert_eq!(total_macs(&g).unwrap(), costs[1].macs);
    }

    #[test]
    fn heaviest_nodes_sorted() {
        let mut g = Graph::new("t", [3, 32, 32]);
        let small = g.add_layer(
            "s",
            LayerKind::conv_seeded(4, 3, 1, 1, 0, 0),
            &[Graph::INPUT],
        );
        let big = g.add_layer("b", LayerKind::conv_seeded(64, 4, 3, 1, 1, 1), &[small]);
        g.mark_output(big);
        let top = heaviest_nodes(&g, 1).unwrap();
        assert_eq!(top[0].0, big);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LayerCost {
            macs: 10,
            other_ops: 1,
            input_elems: 2,
            output_elems: 3,
            weight_elems: 4,
        };
        a.merge(&a.clone());
        assert_eq!(a.macs, 20);
        assert_eq!(a.weight_elems, 8);
    }
}
