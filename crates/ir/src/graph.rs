//! Network graphs: layers, connectivity, validation.

use crate::error::IrError;
use crate::shape;
use crate::weights::Weights;

/// Identifier of a node within one [`Graph`]. Node 0 is always the input.
pub type NodeId = usize;

/// Pointwise non-linearity, optionally fused into a preceding layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// max(0, x)
    Relu,
    /// x for x ≥ 0, slope·x otherwise.
    LeakyRelu(f32),
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(slope) => {
                if x >= 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
        }
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Avg,
}

/// How multi-input element-wise layers combine their operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EltwiseOp {
    /// Element-wise sum (ResNet shortcut joins).
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise product.
    Prod,
}

/// Parameters of a 2-D convolution.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvParams {
    /// Output channel count.
    pub out_channels: usize,
    /// Input channel count (must match the producer's output channels).
    pub in_channels: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width (equal to `kernel_h` for square kernels; Inception-style
    /// 1×7 / 7×1 factorized convolutions use rectangular kernels).
    pub kernel_w: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding rows (top and bottom).
    pub pad_h: usize,
    /// Zero padding columns (left and right).
    pub pad_w: usize,
    /// Grouped-convolution group count (`in == out == groups` ⇒ depthwise).
    pub groups: usize,
    /// Filter weights, `out_channels · in_channels/groups · kernel²` elements.
    pub weights: Weights,
    /// Bias, `out_channels` elements (empty = no bias).
    pub bias: Weights,
    /// Activation fused after the convolution, if any.
    pub activation: Option<Activation>,
}

impl ConvParams {
    /// Number of weight elements this convolution requires.
    pub fn expected_weight_len(&self) -> usize {
        self.out_channels * (self.in_channels / self.groups) * self.kernel_h * self.kernel_w
    }

    /// Whether the kernel is square.
    pub fn is_square(&self) -> bool {
        self.kernel_h == self.kernel_w
    }
}

/// One layer's operation. See the crate docs for the modeling conventions.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerKind {
    /// Graph input placeholder (node 0 only).
    Input,
    /// 2-D convolution.
    Conv(ConvParams),
    /// Spatial pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Square window side.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Pooling over the entire spatial extent, producing `[c, 1, 1]`.
    GlobalPool {
        /// Max or average.
        kind: PoolKind,
    },
    /// Fully-connected layer over the flattened input.
    InnerProduct {
        /// Output feature count.
        out_features: usize,
        /// Input feature count (flattened c·h·w of the producer).
        in_features: usize,
        /// Weights, `out_features · in_features` elements.
        weights: Weights,
        /// Bias, `out_features` elements (empty = no bias).
        bias: Weights,
        /// Fused activation, if any.
        activation: Option<Activation>,
    },
    /// Standalone activation layer.
    Act(Activation),
    /// Batch normalization (inference form).
    BatchNorm {
        /// Per-channel running mean.
        mean: Vec<f32>,
        /// Per-channel running variance.
        var: Vec<f32>,
        /// Per-channel scale.
        gamma: Vec<f32>,
        /// Per-channel shift.
        beta: Vec<f32>,
        /// Numerical-stability epsilon.
        eps: f32,
    },
    /// Per-channel affine transform (Caffe `Scale`).
    Scale {
        /// Per-channel multiplier.
        scale: Vec<f32>,
        /// Per-channel offset.
        bias: Vec<f32>,
    },
    /// Local response normalization across channels (AlexNet/GoogLeNet).
    Lrn {
        /// Window size across channels.
        local_size: usize,
        /// Scaling parameter.
        alpha: f32,
        /// Exponent.
        beta: f32,
        /// Additive constant.
        k: f32,
    },
    /// Element-wise combination of ≥ 2 equal-shaped inputs.
    Eltwise {
        /// Combination operator.
        op: EltwiseOp,
    },
    /// Channel-axis concatenation of ≥ 2 inputs with equal spatial dims.
    Concat,
    /// Channel-wise softmax over a `[c, 1, 1]` tensor.
    Softmax,
    /// Nearest-neighbour spatial upsampling.
    Upsample {
        /// Integer scale factor.
        factor: usize,
    },
    /// Reshape to `[c·h·w, 1, 1]`.
    Flatten,
    /// Channel-range view `[begin, begin+len)` of the input (zero-copy; used
    /// by the horizontal-merge pass to split a merged convolution's output).
    Slice {
        /// First channel of the view.
        begin: usize,
        /// Number of channels in the view.
        len: usize,
    },
    /// Dropout — a no-op at inference; removed by the dead-layer pass.
    Dropout {
        /// Training-time drop rate (unused at inference).
        rate: f32,
    },
    /// Pass-through, used by tests and as a rewrite placeholder.
    Identity,
}

/// Input arity a layer kind accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// Exactly this many inputs.
    Exact(usize),
    /// At least this many inputs.
    AtLeast(usize),
}

impl LayerKind {
    /// Convenience constructor: a seeded square convolution with ReLU.
    ///
    /// # Examples
    ///
    /// ```
    /// use trtsim_ir::graph::LayerKind;
    /// let k = LayerKind::conv_seeded(16, 3, 3, 1, 1, 7);
    /// assert_eq!(k.kind_name(), "Conv");
    /// ```
    pub fn conv_seeded(
        out_channels: usize,
        in_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let len = out_channels * in_channels * kernel * kernel;
        LayerKind::Conv(ConvParams {
            out_channels,
            in_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            pad_h: pad,
            pad_w: pad,
            groups: 1,
            weights: Weights::seeded_he(seed, len, fan_in),
            bias: Weights::Dense(vec![0.0; out_channels]),
            activation: Some(Activation::Relu),
        })
    }

    /// Convenience constructor: a seeded fully-connected layer.
    pub fn fc_seeded(out_features: usize, in_features: usize, seed: u64) -> Self {
        LayerKind::InnerProduct {
            out_features,
            in_features,
            weights: Weights::seeded_he(seed, out_features * in_features, in_features),
            bias: Weights::Dense(vec![0.0; out_features]),
            activation: None,
        }
    }

    /// Short, stable name of the layer kind (used in kernel naming and logs).
    pub fn kind_name(&self) -> &'static str {
        match self {
            LayerKind::Input => "Input",
            LayerKind::Conv(_) => "Conv",
            LayerKind::Pool { .. } => "Pool",
            LayerKind::GlobalPool { .. } => "GlobalPool",
            LayerKind::InnerProduct { .. } => "InnerProduct",
            LayerKind::Act(_) => "Activation",
            LayerKind::BatchNorm { .. } => "BatchNorm",
            LayerKind::Scale { .. } => "Scale",
            LayerKind::Lrn { .. } => "LRN",
            LayerKind::Eltwise { .. } => "Eltwise",
            LayerKind::Concat => "Concat",
            LayerKind::Softmax => "Softmax",
            LayerKind::Upsample { .. } => "Upsample",
            LayerKind::Flatten => "Flatten",
            LayerKind::Slice { .. } => "Slice",
            LayerKind::Dropout { .. } => "Dropout",
            LayerKind::Identity => "Identity",
        }
    }

    /// Input arity this layer requires.
    pub fn arity(&self) -> Arity {
        match self {
            LayerKind::Input => Arity::Exact(0),
            LayerKind::Eltwise { .. } | LayerKind::Concat => Arity::AtLeast(2),
            _ => Arity::Exact(1),
        }
    }

    /// Whether the layer is a no-op at inference time (dead-layer candidates).
    pub fn is_inference_noop(&self) -> bool {
        matches!(self, LayerKind::Dropout { .. } | LayerKind::Identity)
    }

    /// Total learned parameter count of this layer.
    pub fn param_count(&self) -> usize {
        match self {
            LayerKind::Conv(c) => c.weights.len() + c.bias.len(),
            LayerKind::InnerProduct { weights, bias, .. } => weights.len() + bias.len(),
            LayerKind::BatchNorm {
                mean,
                var,
                gamma,
                beta,
                ..
            } => mean.len() + var.len() + gamma.len() + beta.len(),
            LayerKind::Scale { scale, bias } => scale.len() + bias.len(),
            _ => 0,
        }
    }
}

/// A node: one layer instance wired to its producers.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Position in the graph's node list.
    pub id: NodeId,
    /// Human-readable layer name (unique names are conventional, not enforced).
    pub name: String,
    /// The operation.
    pub kind: LayerKind,
    /// Producer node ids (always `< id`, so graphs are topological by construction).
    pub inputs: Vec<NodeId>,
}

/// A directed acyclic network graph with a single image input.
///
/// Nodes are stored in topological order by construction: a layer may only
/// consume nodes that already exist.
///
/// # Examples
///
/// ```
/// use trtsim_ir::graph::{Graph, LayerKind};
/// let mut g = Graph::new("demo", [3, 32, 32]);
/// let c1 = g.add_layer("c1", LayerKind::conv_seeded(8, 3, 3, 1, 1, 0), &[Graph::INPUT]);
/// let c2 = g.add_layer("c2", LayerKind::conv_seeded(8, 8, 3, 1, 1, 1), &[c1]);
/// g.mark_output(c2);
/// assert!(g.validate().is_ok());
/// assert_eq!(g.conv_count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    name: String,
    input_shape: [usize; 3],
    nodes: Vec<Node>,
    outputs: Vec<NodeId>,
}

impl Graph {
    /// Id of the implicit input node.
    pub const INPUT: NodeId = 0;

    /// Creates an empty graph with the given input shape `[c, h, w]`.
    pub fn new(name: impl Into<String>, input_shape: [usize; 3]) -> Self {
        Self {
            name: name.into(),
            input_shape,
            nodes: vec![Node {
                id: 0,
                name: "input".to_string(),
                kind: LayerKind::Input,
                inputs: Vec::new(),
            }],
            outputs: Vec::new(),
        }
    }

    /// Appends a layer consuming the given producers; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any input id is not yet in the graph (this preserves the
    /// topological-order invariant); semantic errors are reported by
    /// [`Graph::validate`] instead.
    pub fn add_layer(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        inputs: &[NodeId],
    ) -> NodeId {
        let id = self.nodes.len();
        for &i in inputs {
            assert!(i < id, "layer input {i} does not exist yet");
        }
        self.nodes.push(Node {
            id,
            name: name.into(),
            kind,
            inputs: inputs.to_vec(),
        });
        id
    }

    /// Marks a node as a graph output (idempotent).
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn mark_output(&mut self, id: NodeId) {
        assert!(id < self.nodes.len(), "output node {id} does not exist");
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input shape `[c, h, w]`.
    pub fn input_shape(&self) -> [usize; 3] {
        self.input_shape
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Output node ids in marking order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Number of nodes including the input placeholder.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph contains only the input placeholder.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Ids of nodes that consume `id`.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.inputs.contains(&id))
            .map(|n| n.id)
            .collect()
    }

    /// Number of convolution layers (the paper's Table II reports these).
    pub fn conv_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, LayerKind::Conv(_)))
            .count()
    }

    /// Number of max-pooling layers (Table II's second architecture column).
    pub fn max_pool_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(
                    n.kind,
                    LayerKind::Pool {
                        kind: PoolKind::Max,
                        ..
                    } | LayerKind::GlobalPool {
                        kind: PoolKind::Max
                    }
                )
            })
            .count()
    }

    /// Total learned parameter count.
    pub fn param_count(&self) -> usize {
        self.nodes.iter().map(|n| n.kind.param_count()).sum()
    }

    /// Model size in bytes at 4 bytes/parameter (the "un-optimized model
    /// size" of the paper's Table II).
    pub fn fp32_bytes(&self) -> usize {
        self.param_count() * 4
    }

    /// Checks connectivity, arity, weight sizes, and shape compatibility.
    ///
    /// # Errors
    ///
    /// Returns the first [`IrError`] found walking nodes in topological order,
    /// or [`IrError::NoOutputs`] if no output was marked.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.outputs.is_empty() {
            return Err(IrError::NoOutputs);
        }
        self.infer_shapes().map(|_| ())
    }

    /// Infers every node's output shape. Index 0 is the input shape.
    ///
    /// # Errors
    ///
    /// Propagates arity/shape/weight-size errors from shape inference.
    pub fn infer_shapes(&self) -> Result<Vec<[usize; 3]>, IrError> {
        let mut shapes: Vec<[usize; 3]> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            if node.id == Self::INPUT {
                shapes.push(self.input_shape);
                continue;
            }
            for &input in &node.inputs {
                if input >= node.id {
                    return Err(IrError::DanglingInput {
                        node: node.name.clone(),
                        input,
                    });
                }
            }
            let in_shapes: Vec<[usize; 3]> = node.inputs.iter().map(|&i| shapes[i]).collect();
            shapes.push(shape::infer(&node.kind, &in_shapes, &node.name)?);
        }
        Ok(shapes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_graph() -> Graph {
        let mut g = Graph::new("t", [3, 16, 16]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(8, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let p1 = g.add_layer(
            "p1",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let f = g.add_layer("flat", LayerKind::Flatten, &[p1]);
        let fc = g.add_layer("fc", LayerKind::fc_seeded(10, 8 * 8 * 8, 1), &[f]);
        g.mark_output(fc);
        g
    }

    #[test]
    fn builds_and_validates() {
        let g = linear_graph();
        assert!(g.validate().is_ok());
        assert_eq!(g.conv_count(), 1);
        assert_eq!(g.max_pool_count(), 1);
    }

    #[test]
    fn shapes_flow_through() {
        let g = linear_graph();
        let shapes = g.infer_shapes().unwrap();
        assert_eq!(shapes[0], [3, 16, 16]);
        assert_eq!(shapes[1], [8, 16, 16]);
        assert_eq!(shapes[2], [8, 8, 8]);
        assert_eq!(shapes[3], [512, 1, 1]);
        assert_eq!(shapes[4], [10, 1, 1]);
    }

    #[test]
    fn no_outputs_is_an_error() {
        let mut g = Graph::new("t", [1, 4, 4]);
        g.add_layer("id", LayerKind::Identity, &[Graph::INPUT]);
        assert_eq!(g.validate(), Err(IrError::NoOutputs));
    }

    #[test]
    fn param_count_sums_layers() {
        let g = linear_graph();
        // conv: 8*3*3*3 + 8 bias; fc: 10*512 + 10 bias
        assert_eq!(g.param_count(), 8 * 3 * 3 * 3 + 8 + 10 * 512 + 10);
        assert_eq!(g.fp32_bytes(), g.param_count() * 4);
    }

    #[test]
    fn consumers_are_found() {
        let g = linear_graph();
        assert_eq!(g.consumers(1), vec![2]);
        assert!(g.consumers(4).is_empty());
    }

    #[test]
    fn mark_output_is_idempotent() {
        let mut g = linear_graph();
        g.mark_output(4);
        g.mark_output(4);
        assert_eq!(g.outputs(), &[4]);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_panics() {
        let mut g = Graph::new("t", [1, 4, 4]);
        g.add_layer("bad", LayerKind::Identity, &[5]);
    }

    #[test]
    fn activation_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::LeakyRelu(0.1).apply(-10.0), -1.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(Activation::Tanh.apply(100.0) <= 1.0);
    }

    #[test]
    fn arity_classifications() {
        assert_eq!(LayerKind::Concat.arity(), Arity::AtLeast(2));
        assert_eq!(LayerKind::Softmax.arity(), Arity::Exact(1));
        assert_eq!(LayerKind::Input.arity(), Arity::Exact(0));
    }

    #[test]
    fn inference_noops() {
        assert!(LayerKind::Dropout { rate: 0.5 }.is_inference_noop());
        assert!(LayerKind::Identity.is_inference_noop());
        assert!(!LayerKind::Softmax.is_inference_noop());
    }
}
