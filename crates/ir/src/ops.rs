//! Canonical FP32 numeric implementations of every layer.
//!
//! These are the *reference semantics*: straightforward sequential
//! accumulation, exactly what a framework's CPU/GPU path computes before any
//! engine optimization. The tactic implementations in `trtsim-kernels`
//! deliberately deviate from these in accumulation order and precision; their
//! correctness is defined as closeness to this module's output.

use crate::graph::{Activation, ConvParams, EltwiseOp, PoolKind};
use crate::tensor::Tensor;

/// Direct 2-D convolution with groups, stride, zero padding, bias, and an
/// optional fused activation.
///
/// # Panics
///
/// Panics if the weight slice length does not match the parameters, or the
/// input channel count differs from `params.in_channels`.
pub fn conv2d(input: &Tensor, weights: &[f32], bias: &[f32], params: &ConvParams) -> Tensor {
    let [ic, ih, iw] = input.shape();
    assert_eq!(ic, params.in_channels, "conv input channel mismatch");
    assert_eq!(
        weights.len(),
        params.expected_weight_len(),
        "conv weight length mismatch"
    );
    let (kh, kw) = (params.kernel_h, params.kernel_w);
    let s = params.stride;
    let (ph, pw) = (params.pad_h as isize, params.pad_w as isize);
    let oh = (ih + 2 * params.pad_h - kh) / s + 1;
    let ow = (iw + 2 * params.pad_w - kw) / s + 1;
    let cpg_in = params.in_channels / params.groups;
    let cpg_out = params.out_channels / params.groups;

    let mut out = Tensor::zeros([params.out_channels, oh, ow]);
    for oc in 0..params.out_channels {
        let group = oc / cpg_out;
        let b = bias.get(oc).copied().unwrap_or(0.0);
        let w_base = oc * cpg_in * kh * kw;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b;
                for icg in 0..cpg_in {
                    let c_in = group * cpg_in + icg;
                    for ky in 0..kh {
                        let iy = (oy * s) as isize + ky as isize - ph;
                        if iy < 0 || iy >= ih as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * s) as isize + kx as isize - pw;
                            if ix < 0 || ix >= iw as isize {
                                continue;
                            }
                            acc += input.at(c_in, iy as usize, ix as usize)
                                * weights[w_base + (icg * kh + ky) * kw + kx];
                        }
                    }
                }
                *out.at_mut(oc, oy, ox) = match params.activation {
                    Some(a) => a.apply(acc),
                    None => acc,
                };
            }
        }
    }
    out
}

/// Spatial max/average pooling.
///
/// Average pooling divides by the full window area (count-includes-padding
/// convention, as in Caffe's default).
pub fn pool2d(input: &Tensor, kind: PoolKind, kernel: usize, stride: usize, pad: usize) -> Tensor {
    let [c, ih, iw] = input.shape();
    let oh = (ih + 2 * pad - kernel) / stride + 1;
    let ow = (iw + 2 * pad - kernel) / stride + 1;
    let p = pad as isize;
    let mut out = Tensor::zeros([c, oh, ow]);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut sum = 0.0f32;
                for ky in 0..kernel {
                    let iy = (oy * stride) as isize + ky as isize - p;
                    for kx in 0..kernel {
                        let ix = (ox * stride) as isize + kx as isize - p;
                        let v = if iy < 0 || ix < 0 || iy >= ih as isize || ix >= iw as isize {
                            0.0
                        } else {
                            input.at(ch, iy as usize, ix as usize)
                        };
                        best = best.max(v);
                        sum += v;
                    }
                }
                *out.at_mut(ch, oy, ox) = match kind {
                    PoolKind::Max => best,
                    PoolKind::Avg => sum / (kernel * kernel) as f32,
                };
            }
        }
    }
    out
}

/// Pooling over the whole spatial extent, producing `[c, 1, 1]`.
pub fn global_pool(input: &Tensor, kind: PoolKind) -> Tensor {
    let [c, h, w] = input.shape();
    let mut out = Tensor::zeros([c, 1, 1]);
    for ch in 0..c {
        let plane = input.channel(ch);
        *out.at_mut(ch, 0, 0) = match kind {
            PoolKind::Max => plane.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b)),
            PoolKind::Avg => plane.iter().sum::<f32>() / (h * w) as f32,
        };
    }
    out
}

/// Fully-connected layer over the flattened input.
///
/// # Panics
///
/// Panics if `weights.len() != out_features * input.len()`.
pub fn inner_product(
    input: &Tensor,
    weights: &[f32],
    bias: &[f32],
    out_features: usize,
    activation: Option<Activation>,
) -> Tensor {
    let in_features = input.len();
    assert_eq!(
        weights.len(),
        out_features * in_features,
        "fc weight mismatch"
    );
    let x = input.as_slice();
    let mut out = Tensor::zeros([out_features, 1, 1]);
    for o in 0..out_features {
        let row = &weights[o * in_features..(o + 1) * in_features];
        let mut acc = bias.get(o).copied().unwrap_or(0.0);
        for (xi, wi) in x.iter().zip(row.iter()) {
            acc += xi * wi;
        }
        *out.at_mut(o, 0, 0) = match activation {
            Some(a) => a.apply(acc),
            None => acc,
        };
    }
    out
}

/// Standalone activation.
pub fn activate(input: &Tensor, activation: Activation) -> Tensor {
    let mut out = input.clone();
    out.map_inplace(|x| activation.apply(x));
    out
}

/// Inference-form batch normalization.
pub fn batch_norm(
    input: &Tensor,
    mean: &[f32],
    var: &[f32],
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> Tensor {
    let [c, h, w] = input.shape();
    let mut out = Tensor::zeros([c, h, w]);
    for ch in 0..c {
        let inv_std = 1.0 / (var[ch] + eps).sqrt();
        for y in 0..h {
            for x in 0..w {
                *out.at_mut(ch, y, x) =
                    (input.at(ch, y, x) - mean[ch]) * inv_std * gamma[ch] + beta[ch];
            }
        }
    }
    out
}

/// Per-channel affine transform.
pub fn scale(input: &Tensor, scale: &[f32], bias: &[f32]) -> Tensor {
    let [c, h, w] = input.shape();
    let mut out = Tensor::zeros([c, h, w]);
    for (ch, &mult) in scale.iter().enumerate().take(c) {
        let b = bias.get(ch).copied().unwrap_or(0.0);
        for y in 0..h {
            for x in 0..w {
                *out.at_mut(ch, y, x) = input.at(ch, y, x) * mult + b;
            }
        }
    }
    out
}

/// Across-channel local response normalization (AlexNet-style):
/// `out = in / (k + α/n · Σ in²)^β` over a window of `local_size` channels.
pub fn lrn(input: &Tensor, local_size: usize, alpha: f32, beta: f32, k: f32) -> Tensor {
    let [c, h, w] = input.shape();
    let half = local_size / 2;
    let mut out = Tensor::zeros([c, h, w]);
    for ch in 0..c {
        let lo = ch.saturating_sub(half);
        let hi = (ch + half).min(c - 1);
        for y in 0..h {
            for x in 0..w {
                let mut sq = 0.0f32;
                for n in lo..=hi {
                    let v = input.at(n, y, x);
                    sq += v * v;
                }
                let denom = (k + alpha / local_size as f32 * sq).powf(beta);
                *out.at_mut(ch, y, x) = input.at(ch, y, x) / denom;
            }
        }
    }
    out
}

/// Element-wise combination of equal-shaped tensors.
///
/// # Panics
///
/// Panics if fewer than two inputs are given or shapes differ.
pub fn eltwise(inputs: &[&Tensor], op: EltwiseOp) -> Tensor {
    assert!(inputs.len() >= 2, "eltwise needs at least two inputs");
    let shape = inputs[0].shape();
    assert!(
        inputs.iter().all(|t| t.shape() == shape),
        "eltwise shape mismatch"
    );
    let mut out = inputs[0].clone();
    for t in &inputs[1..] {
        for (o, &v) in out.as_mut_slice().iter_mut().zip(t.as_slice()) {
            *o = match op {
                EltwiseOp::Sum => *o + v,
                EltwiseOp::Max => o.max(v),
                EltwiseOp::Prod => *o * v,
            };
        }
    }
    out
}

/// Channel-axis concatenation.
///
/// # Panics
///
/// Panics if inputs have differing spatial dims.
pub fn concat(inputs: &[&Tensor]) -> Tensor {
    assert!(!inputs.is_empty());
    let h = inputs[0].height();
    let w = inputs[0].width();
    assert!(inputs.iter().all(|t| t.height() == h && t.width() == w));
    let total_c: usize = inputs.iter().map(|t| t.channels()).sum();
    let mut data = Vec::with_capacity(total_c * h * w);
    for t in inputs {
        data.extend_from_slice(t.as_slice());
    }
    Tensor::from_vec([total_c, h, w], data)
}

/// Channel-range view copy: channels `[begin, begin+len)`.
///
/// # Panics
///
/// Panics if the range exceeds the input's channels.
pub fn slice_channels(input: &Tensor, begin: usize, len: usize) -> Tensor {
    let [c, h, w] = input.shape();
    assert!(begin + len <= c, "slice out of range");
    let plane = h * w;
    let data = input.as_slice()[begin * plane..(begin + len) * plane].to_vec();
    Tensor::from_vec([len, h, w], data)
}

/// Numerically-stable softmax over all elements.
pub fn softmax(input: &Tensor) -> Tensor {
    let max = input
        .as_slice()
        .iter()
        .fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let mut out = input.clone();
    let mut sum = 0.0f32;
    for v in out.as_mut_slice() {
        *v = (*v - max).exp();
        sum += *v;
    }
    for v in out.as_mut_slice() {
        *v /= sum;
    }
    out
}

/// Nearest-neighbour upsampling by an integer factor.
pub fn upsample(input: &Tensor, factor: usize) -> Tensor {
    let [c, h, w] = input.shape();
    Tensor::from_fn([c, h * factor, w * factor], |ch, y, x| {
        input.at(ch, y / factor, x / factor)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ConvParams;
    use crate::weights::Weights;

    fn identity_conv(channels: usize) -> (ConvParams, Vec<f32>) {
        // 1x1 conv that copies each channel.
        let mut w = vec![0.0; channels * channels];
        for c in 0..channels {
            w[c * channels + c] = 1.0;
        }
        let params = ConvParams {
            out_channels: channels,
            in_channels: channels,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 1,
            weights: Weights::Dense(w.clone()),
            bias: Weights::Dense(vec![]),
            activation: None,
        };
        (params, w)
    }

    #[test]
    fn identity_conv_copies_input() {
        let input = Tensor::from_fn([3, 4, 4], |c, h, w| (c + h + w) as f32);
        let (params, w) = identity_conv(3);
        let out = conv2d(&input, &w, &[], &params);
        assert_eq!(out, input);
    }

    #[test]
    fn conv_box_filter_sums_window() {
        let input = Tensor::from_vec([1, 3, 3], vec![1.0; 9]);
        let params = ConvParams {
            out_channels: 1,
            in_channels: 1,
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            pad_h: 1,
            pad_w: 1,
            groups: 1,
            weights: Weights::Dense(vec![1.0; 9]),
            bias: Weights::Dense(vec![]),
            activation: None,
        };
        let out = conv2d(&input, &[1.0; 9], &[], &params);
        // Center sees all 9 ones; corners see 4.
        assert_eq!(out.at(0, 1, 1), 9.0);
        assert_eq!(out.at(0, 0, 0), 4.0);
        assert_eq!(out.at(0, 0, 1), 6.0);
    }

    #[test]
    fn conv_bias_and_relu() {
        let input = Tensor::from_vec([1, 1, 1], vec![1.0]);
        let params = ConvParams {
            out_channels: 2,
            in_channels: 1,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 1,
            weights: Weights::Dense(vec![1.0, -5.0]),
            bias: Weights::Dense(vec![0.5, 0.5]),
            activation: Some(Activation::Relu),
        };
        let out = conv2d(&input, &[1.0, -5.0], &[0.5, 0.5], &params);
        assert_eq!(out.at(0, 0, 0), 1.5);
        assert_eq!(out.at(1, 0, 0), 0.0); // clipped by relu
    }

    #[test]
    fn depthwise_conv_respects_groups() {
        let input = Tensor::from_vec([2, 1, 1], vec![3.0, 5.0]);
        let params = ConvParams {
            out_channels: 2,
            in_channels: 2,
            kernel_h: 1,
            kernel_w: 1,
            stride: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 2,
            weights: Weights::Dense(vec![2.0, 10.0]),
            bias: Weights::Dense(vec![]),
            activation: None,
        };
        let out = conv2d(&input, &[2.0, 10.0], &[], &params);
        assert_eq!(out.at(0, 0, 0), 6.0);
        assert_eq!(out.at(1, 0, 0), 50.0);
    }

    #[test]
    fn max_pool_picks_maxima() {
        let input = Tensor::from_vec([1, 2, 2], vec![1.0, 7.0, 3.0, 2.0]);
        let out = pool2d(&input, PoolKind::Max, 2, 2, 0);
        assert_eq!(out.shape(), [1, 1, 1]);
        assert_eq!(out.at(0, 0, 0), 7.0);
    }

    #[test]
    fn avg_pool_divides_by_window() {
        let input = Tensor::from_vec([1, 2, 2], vec![1.0, 7.0, 3.0, 2.0]);
        let out = pool2d(&input, PoolKind::Avg, 2, 2, 0);
        assert_eq!(out.at(0, 0, 0), 13.0 / 4.0);
    }

    #[test]
    fn global_pool_variants() {
        let input = Tensor::from_vec([1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(global_pool(&input, PoolKind::Max).at(0, 0, 0), 4.0);
        assert_eq!(global_pool(&input, PoolKind::Avg).at(0, 0, 0), 2.5);
    }

    #[test]
    fn inner_product_is_matvec() {
        let input = Tensor::from_vec([2, 1, 1], vec![1.0, 2.0]);
        let out = inner_product(&input, &[1.0, 0.0, 0.5, 0.5], &[0.0, 1.0], 2, None);
        assert_eq!(out.at(0, 0, 0), 1.0);
        assert_eq!(out.at(1, 0, 0), 2.5);
    }

    #[test]
    fn batch_norm_standardizes() {
        let input = Tensor::from_vec([1, 1, 2], vec![2.0, 4.0]);
        let out = batch_norm(&input, &[3.0], &[1.0], &[1.0], &[0.0], 0.0);
        assert!((out.at(0, 0, 0) + 1.0).abs() < 1e-6);
        assert!((out.at(0, 0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lrn_normalizes_by_neighbourhood() {
        let input = Tensor::from_vec([2, 1, 1], vec![1.0, 1.0]);
        let out = lrn(&input, 2, 1.0, 1.0, 1.0);
        // each channel sees both channels: denom = 1 + (1/2)*2 = 2
        assert!((out.at(0, 0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn eltwise_ops() {
        let a = Tensor::from_vec([1, 1, 2], vec![1.0, 4.0]);
        let b = Tensor::from_vec([1, 1, 2], vec![3.0, 2.0]);
        assert_eq!(eltwise(&[&a, &b], EltwiseOp::Sum).as_slice(), &[4.0, 6.0]);
        assert_eq!(eltwise(&[&a, &b], EltwiseOp::Max).as_slice(), &[3.0, 4.0]);
        assert_eq!(eltwise(&[&a, &b], EltwiseOp::Prod).as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn concat_stacks_channels() {
        let a = Tensor::from_vec([1, 1, 2], vec![1.0, 2.0]);
        let b = Tensor::from_vec([2, 1, 2], vec![3.0, 4.0, 5.0, 6.0]);
        let out = concat(&[&a, &b]);
        assert_eq!(out.shape(), [3, 1, 2]);
        assert_eq!(out.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let input = Tensor::from_vec([3, 1, 1], vec![1000.0, 1001.0, 1002.0]);
        let out = softmax(&input);
        let sum: f32 = out.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(out.at(2, 0, 0) > out.at(0, 0, 0));
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn upsample_replicates() {
        let input = Tensor::from_vec([1, 1, 2], vec![1.0, 2.0]);
        let out = upsample(&input, 2);
        assert_eq!(out.shape(), [1, 2, 4]);
        assert_eq!(out.at(0, 1, 1), 1.0);
        assert_eq!(out.at(0, 0, 3), 2.0);
    }
}
