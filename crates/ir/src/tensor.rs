//! Batch-1 CHW tensors.

use std::fmt;

/// A dense rank-3 tensor in channel–height–width layout.
///
/// All simulator numerics run over `f32` storage; reduced-precision formats
/// are modeled by rounding values onto the format's grid at kernel boundaries
/// (see `trtsim-util`'s `f16` module).
///
/// # Examples
///
/// ```
/// use trtsim_ir::Tensor;
/// let mut t = Tensor::zeros([2, 3, 3]);
/// *t.at_mut(1, 2, 0) = 5.0;
/// assert_eq!(t.at(1, 2, 0), 5.0);
/// assert_eq!(t.len(), 18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: [usize; 3],
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of shape `[c, h, w]`.
    pub fn zeros(shape: [usize; 3]) -> Self {
        Self {
            shape,
            data: vec![0.0; shape[0] * shape[1] * shape[2]],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != c * h * w`.
    pub fn from_vec(shape: [usize; 3], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape[0] * shape[1] * shape[2],
            "tensor data length does not match shape {shape:?}"
        );
        Self { shape, data }
    }

    /// Builds a tensor by evaluating `f(c, h, w)` at every coordinate.
    pub fn from_fn(shape: [usize; 3], mut f: impl FnMut(usize, usize, usize) -> f32) -> Self {
        let mut t = Tensor::zeros(shape);
        for c in 0..shape[0] {
            for h in 0..shape[1] {
                for w in 0..shape[2] {
                    *t.at_mut(c, h, w) = f(c, h, w);
                }
            }
        }
        t
    }

    /// Shape as `[channels, height, width]`.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.shape[0]
    }

    /// Height.
    pub fn height(&self) -> usize {
        self.shape[1]
    }

    /// Width.
    pub fn width(&self) -> usize {
        self.shape[2]
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing storage (CHW row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn at(&self, c: usize, h: usize, w: usize) -> f32 {
        debug_assert!(c < self.shape[0] && h < self.shape[1] && w < self.shape[2]);
        self.data[(c * self.shape[1] + h) * self.shape[2] + w]
    }

    /// Mutable element accessor.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[inline]
    pub fn at_mut(&mut self, c: usize, h: usize, w: usize) -> &mut f32 {
        debug_assert!(c < self.shape[0] && h < self.shape[1] && w < self.shape[2]);
        &mut self.data[(c * self.shape[1] + h) * self.shape[2] + w]
    }

    /// One whole channel plane as a slice.
    pub fn channel(&self, c: usize) -> &[f32] {
        let plane = self.shape[1] * self.shape[2];
        &self.data[c * plane..(c + 1) * plane]
    }

    /// Index of the maximum element (first one on ties), or `None` if empty.
    ///
    /// For a `[classes, 1, 1]` logits tensor this is the predicted class.
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                Some((_, b)) if v <= b => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn amax(&self) -> f32 {
        self.data.iter().fold(0.0, |acc, &x| acc.max(x.abs()))
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Flattens to shape `[len, 1, 1]` without copying data.
    pub fn into_flat(self) -> Tensor {
        let len = self.data.len();
        Tensor {
            shape: [len, 1, 1],
            data: self.data,
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor[{}x{}x{}]",
            self.shape[0], self.shape[1], self.shape[2]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_layout() {
        let t = Tensor::zeros([2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.shape(), [2, 3, 4]);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn indexing_is_chw_row_major() {
        let t = Tensor::from_vec([2, 2, 2], (0..8).map(|i| i as f32).collect());
        assert_eq!(t.at(0, 0, 0), 0.0);
        assert_eq!(t.at(0, 0, 1), 1.0);
        assert_eq!(t.at(0, 1, 0), 2.0);
        assert_eq!(t.at(1, 0, 0), 4.0);
        assert_eq!(t.at(1, 1, 1), 7.0);
    }

    #[test]
    fn from_fn_matches_at() {
        let t = Tensor::from_fn([3, 4, 5], |c, h, w| (c * 100 + h * 10 + w) as f32);
        assert_eq!(t.at(2, 3, 4), 234.0);
    }

    #[test]
    fn argmax_finds_peak() {
        let mut t = Tensor::zeros([10, 1, 1]);
        *t.at_mut(7, 0, 0) = 3.5;
        assert_eq!(t.argmax(), Some(7));
    }

    #[test]
    fn argmax_first_on_tie() {
        let t = Tensor::from_vec([3, 1, 1], vec![1.0, 1.0, 0.0]);
        assert_eq!(t.argmax(), Some(0));
    }

    #[test]
    fn amax_is_absolute() {
        let t = Tensor::from_vec([1, 1, 3], vec![0.5, -2.0, 1.0]);
        assert_eq!(t.amax(), 2.0);
    }

    #[test]
    fn channel_slices_planes() {
        let t = Tensor::from_vec([2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.channel(0), &[1.0, 2.0]);
        assert_eq!(t.channel(1), &[3.0, 4.0]);
    }

    #[test]
    fn into_flat_preserves_data() {
        let t = Tensor::from_vec([2, 2, 1], vec![1.0, 2.0, 3.0, 4.0]);
        let flat = t.into_flat();
        assert_eq!(flat.shape(), [4, 1, 1]);
        assert_eq!(flat.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        Tensor::from_vec([2, 2, 2], vec![0.0; 7]);
    }
}
