//! Physical activation layouts and conversion kernels.
//!
//! Logically every activation is a rank-3 CHW tensor ([`crate::Tensor`]);
//! this module adds the *physical* axis TensorRT's tactic-specific kernels
//! exploit (`…nhwc_tn_v1` in the paper's kernel tables X/XI): the same
//! logical values can be stored CHW (canonical), NHWC (channels innermost),
//! or blocked `CHWc8` (channels split into lanes of 8, lane innermost —
//! cuDNN's `NCHW_VECT_C` analog for an 8-wide SIMD unit).
//!
//! Conversions are pure permutations (plus explicit zero padding for the
//! blocked tail), so round-tripping any tensor through any layout is
//! byte-identical on the `f32` bit patterns — NaN payloads included. The
//! plan-time layout assignment pass in `trtsim-core` decides which values
//! live in which layout and inserts the minimal number of these converts;
//! every executed conversion bumps a process-wide counter that the core
//! telemetry bridge exports as `trtsim_kernel_layout_converts_total`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Channel lane width of the blocked [`Layout::Chwc8`] format.
pub const LANES: usize = 8;

/// Total layout conversions executed, process-wide. `trtsim-ir` stays
/// metrics-free; `trtsim-core`'s telemetry bridge drains this into the
/// registry (same pattern as the kernels' FP16 redo counter).
static LAYOUT_CONVERTS: AtomicU64 = AtomicU64::new(0);

/// Monotone count of layout conversions executed since process start.
pub fn layout_convert_events() -> u64 {
    LAYOUT_CONVERTS.load(Ordering::Relaxed)
}

/// How a logical CHW value is stored in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Canonical channel-major storage: `data[(c*h + y)*w + x]`.
    #[default]
    Chw,
    /// Channels innermost: `data[(y*w + x)*c_total + c]`.
    Nhwc,
    /// Channels blocked into lanes of [`LANES`], lane innermost:
    /// `data[(((c/8)*h + y)*w + x)*8 + c%8]`. The channel axis is padded up
    /// to a multiple of 8; pad lanes hold explicit zeros.
    Chwc8,
}

impl Layout {
    /// Physical buffer shape for a logical `[c, h, w]` value. CHW and NHWC
    /// are unpadded (`NHWC` permutes within the same length); `CHWc8` pads
    /// the channel axis up to a multiple of [`LANES`].
    pub fn physical_shape(self, shape: [usize; 3]) -> [usize; 3] {
        match self {
            Layout::Chw | Layout::Nhwc => shape,
            Layout::Chwc8 => [shape[0].div_ceil(LANES) * LANES, shape[1], shape[2]],
        }
    }

    /// Physical element count for a logical `[c, h, w]` value.
    pub fn physical_len(self, shape: [usize; 3]) -> usize {
        let p = self.physical_shape(shape);
        p[0] * p[1] * p[2]
    }

    /// Index of logical element `(c, y, x)` within this layout's physical
    /// buffer for a logical shape `[ch, h, w]`.
    #[inline]
    pub fn index(self, shape: [usize; 3], c: usize, y: usize, x: usize) -> usize {
        let [ch, h, w] = shape;
        debug_assert!(c < ch && y < h && x < w);
        match self {
            Layout::Chw => (c * h + y) * w + x,
            Layout::Nhwc => (y * w + x) * ch + c,
            Layout::Chwc8 => (((c / LANES) * h + y) * w + x) * LANES + c % LANES,
        }
    }

    /// Short lowercase name used in kernel names and telemetry labels.
    pub fn name(self) -> &'static str {
        match self {
            Layout::Chw => "chw",
            Layout::Nhwc => "nhwc",
            Layout::Chwc8 => "chw8",
        }
    }
}

/// Converts `src` (holding logical shape `shape` stored as `from`) into a
/// freshly laid-out buffer stored as `to`. `CHWc8` pad lanes are written as
/// explicit zeros; real elements are moved bit-exactly.
///
/// # Panics
///
/// Panics if `src.len()` does not match `from.physical_len(shape)`.
pub fn convert(src: &[f32], shape: [usize; 3], from: Layout, to: Layout) -> Vec<f32> {
    let mut dst = vec![0.0f32; to.physical_len(shape)];
    convert_into(src, shape, from, to, &mut dst);
    dst
}

/// [`convert`] into a caller-provided buffer (arena-recycled on the hot
/// path). `dst` is fully overwritten, pad lanes included.
///
/// # Panics
///
/// Panics if either buffer length does not match its layout's physical
/// length for `shape`.
pub fn convert_into(src: &[f32], shape: [usize; 3], from: Layout, to: Layout, dst: &mut [f32]) {
    assert_eq!(src.len(), from.physical_len(shape), "src/layout mismatch");
    assert_eq!(dst.len(), to.physical_len(shape), "dst/layout mismatch");
    LAYOUT_CONVERTS.fetch_add(1, Ordering::Relaxed);
    let [c_total, h, w] = shape;
    if to == Layout::Chwc8 {
        // Pad lanes must come out zero regardless of what `dst` held.
        dst.fill(0.0);
    }
    match (from, to) {
        (a, b) if a == b => dst.copy_from_slice(src),
        // The hot pair on the resnet fast path: blocked conv output back to
        // canonical rows. Walk destination rows so writes stay sequential.
        (Layout::Chwc8, Layout::Chw) => {
            for c in 0..c_total {
                let (cb, cl) = (c / LANES, c % LANES);
                for y in 0..h {
                    let s = ((cb * h + y) * w) * LANES + cl;
                    let d = (c * h + y) * w;
                    for x in 0..w {
                        dst[d + x] = src[s + x * LANES];
                    }
                }
            }
        }
        (Layout::Chw, Layout::Chwc8) => {
            for c in 0..c_total {
                let (cb, cl) = (c / LANES, c % LANES);
                for y in 0..h {
                    let s = (c * h + y) * w;
                    let d = ((cb * h + y) * w) * LANES + cl;
                    for x in 0..w {
                        dst[d + x * LANES] = src[s + x];
                    }
                }
            }
        }
        (Layout::Chw, Layout::Nhwc) => {
            for c in 0..c_total {
                for y in 0..h {
                    let s = (c * h + y) * w;
                    let d = y * w * c_total + c;
                    for x in 0..w {
                        dst[d + x * c_total] = src[s + x];
                    }
                }
            }
        }
        (Layout::Nhwc, Layout::Chw) => {
            for c in 0..c_total {
                for y in 0..h {
                    let s = y * w * c_total + c;
                    let d = (c * h + y) * w;
                    for x in 0..w {
                        dst[d + x] = src[s + x * c_total];
                    }
                }
            }
        }
        // Rare pairs (never emitted by the current assignment pass, which
        // anchors converts at CHW): go element-wise through logical indices.
        (from, to) => {
            for c in 0..c_total {
                for y in 0..h {
                    for x in 0..w {
                        dst[to.index(shape, c, y, x)] = src[from.index(shape, c, y, x)];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f32> {
        (0..n).map(|i| i as f32 - 7.5).collect()
    }

    #[test]
    fn physical_shapes_pad_only_chwc8() {
        assert_eq!(Layout::Chw.physical_shape([3, 4, 5]), [3, 4, 5]);
        assert_eq!(Layout::Nhwc.physical_shape([3, 4, 5]), [3, 4, 5]);
        assert_eq!(Layout::Chwc8.physical_shape([3, 4, 5]), [8, 4, 5]);
        assert_eq!(Layout::Chwc8.physical_shape([16, 2, 2]), [16, 2, 2]);
    }

    #[test]
    fn indexing_agrees_with_conversion() {
        let shape = [5, 3, 4];
        let src = ramp(Layout::Chw.physical_len(shape));
        for to in [Layout::Nhwc, Layout::Chwc8] {
            let out = convert(&src, shape, Layout::Chw, to);
            for c in 0..shape[0] {
                for y in 0..shape[1] {
                    for x in 0..shape[2] {
                        assert_eq!(
                            out[to.index(shape, c, y, x)],
                            src[Layout::Chw.index(shape, c, y, x)],
                            "({c},{y},{x}) via {to:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chwc8_pad_lanes_are_zero() {
        let shape = [3, 2, 2];
        let src = vec![1.0f32; 12];
        let out = convert(&src, shape, Layout::Chw, Layout::Chwc8);
        assert_eq!(out.len(), 8 * 2 * 2);
        for y in 0..2 {
            for x in 0..2 {
                for lane in 3..8 {
                    assert_eq!(out[(y * 2 + x) * 8 + lane], 0.0);
                }
            }
        }
    }

    #[test]
    fn round_trips_are_bit_identical_including_nan_payloads() {
        let shape = [11, 3, 2]; // padded tail: 11 % 8 != 0
        let mut src = ramp(Layout::Chw.physical_len(shape));
        src[5] = f32::from_bits(0x7fc0_1234); // NaN with payload
        src[6] = -0.0;
        for via in [Layout::Nhwc, Layout::Chwc8] {
            let there = convert(&src, shape, Layout::Chw, via);
            let back = convert(&there, shape, via, Layout::Chw);
            let same = src
                .iter()
                .zip(&back)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "round trip through {via:?} not byte-identical");
        }
    }

    #[test]
    fn generic_pair_matches_two_hops() {
        let shape = [9, 2, 3];
        let src = ramp(Layout::Nhwc.physical_len(shape));
        let direct = convert(&src, shape, Layout::Nhwc, Layout::Chwc8);
        let chw = convert(&src, shape, Layout::Nhwc, Layout::Chw);
        let two_hop = convert(&chw, shape, Layout::Chw, Layout::Chwc8);
        assert_eq!(direct, two_hop);
    }

    #[test]
    fn convert_counter_is_monotone() {
        let before = layout_convert_events();
        let _ = convert(&[0.0; 4], [1, 2, 2], Layout::Chw, Layout::Nhwc);
        assert!(layout_convert_events() > before);
    }
}
