//! A recycling allocator for activation tensors.
//!
//! Liveness-driven executors free each activation after its last use; this
//! arena keeps those freed buffers in *size-classed* pools so the next
//! allocation can reuse the memory instead of hitting the system allocator.
//! Buffers are carved in power-of-two size classes (tile-sized slots): a
//! freed 3072-element buffer parks in the 4096 class and serves the next
//! request for anything in (2048, 4096], so small activations of slightly
//! different shapes share slots rather than each pinning a private pool
//! entry. Over a batch of images the steady state allocates nothing — and
//! retains far fewer distinct spare buffers than the old exact-length pools.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Smallest size class, elements. Classes below this collapse into one
/// bucket so tiny logits/bias-sized tensors all share.
const MIN_CLASS: usize = 64;

/// Rounds a requested element count up to its size class: the next power of
/// two, with a floor of `MIN_CLASS`.
pub fn size_class(len: usize) -> usize {
    len.next_power_of_two().max(MIN_CLASS)
}

/// Size-classed free-list of tensor buffers.
///
/// # Examples
///
/// ```
/// use trtsim_ir::arena::TensorArena;
///
/// let mut arena = TensorArena::new();
/// let t = arena.alloc_zeroed([2, 3, 3]);
/// arena.release(t);
/// // 18 and 25 elements share the 64-element size class.
/// let _reused = arena.alloc_zeroed([1, 5, 5]);
/// assert_eq!(arena.recycled_allocs(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TensorArena {
    /// Freed buffers by size class (power-of-two capacity).
    free: HashMap<usize, Vec<Vec<f32>>>,
    retained_bytes: u64,
    peak_retained_bytes: u64,
    fresh_allocs: u64,
    recycled_allocs: u64,
}

impl TensorArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled tensor, recycling a freed buffer of the same size class
    /// when one is available.
    pub fn alloc_zeroed(&mut self, shape: [usize; 3]) -> Tensor {
        let len = shape[0] * shape[1] * shape[2];
        let mut data = self.take_buffer(len);
        data.iter_mut().for_each(|v| *v = 0.0);
        Tensor::from_vec(shape, data)
    }

    /// A tensor holding a copy of `src`, recycling a freed buffer when
    /// possible.
    pub fn alloc_copy(&mut self, src: &Tensor) -> Tensor {
        let mut data = self.take_buffer(src.len());
        data.copy_from_slice(src.as_slice());
        Tensor::from_vec(src.shape(), data)
    }

    /// A raw `len`-element scratch buffer (contents unspecified), recycled
    /// from `len`'s size class when possible. The vector's *length* is
    /// exactly `len`; its capacity is the class size. Pair with
    /// [`TensorArena::give_buffer`].
    pub fn take_buffer(&mut self, len: usize) -> Vec<f32> {
        let class = size_class(len);
        match self.free.get_mut(&class).and_then(Vec::pop) {
            Some(mut buffer) => {
                self.recycled_allocs += 1;
                self.retained_bytes -= class as u64 * 4;
                buffer.resize(len, 0.0);
                buffer
            }
            None => {
                self.fresh_allocs += 1;
                let mut buffer = Vec::with_capacity(class);
                buffer.resize(len, 0.0);
                buffer
            }
        }
    }

    /// Returns a scratch buffer to its size class' pool.
    pub fn give_buffer(&mut self, buffer: Vec<f32>) {
        if buffer.capacity() == 0 {
            return;
        }
        // A buffer that grew past its class (or arrived from outside the
        // arena) files under the class its capacity actually serves.
        let class = if buffer.capacity().is_power_of_two() && buffer.capacity() >= MIN_CLASS {
            buffer.capacity()
        } else {
            size_class(buffer.capacity().max(buffer.len()))
        };
        self.retained_bytes += class as u64 * 4;
        self.peak_retained_bytes = self.peak_retained_bytes.max(self.retained_bytes);
        self.free.entry(class).or_default().push(buffer);
    }

    /// Releases a dead tensor's buffer into the pool.
    pub fn release(&mut self, tensor: Tensor) {
        self.give_buffer(tensor.into_vec());
    }

    /// Allocations served fresh from the system allocator.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Allocations served by recycling a freed buffer.
    pub fn recycled_allocs(&self) -> u64 {
        self.recycled_allocs
    }

    /// Bytes currently parked in the free pool (at class granularity).
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// High-water mark of [`TensorArena::retained_bytes`].
    pub fn peak_retained_bytes(&self) -> u64 {
        self.peak_retained_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_same_class_buffers() {
        let mut arena = TensorArena::new();
        let a = arena.alloc_zeroed([4, 2, 2]);
        arena.release(a);
        assert_eq!(arena.retained_bytes(), MIN_CLASS as u64 * 4);
        let b = arena.alloc_zeroed([1, 4, 4]); // same class, new shape
        assert_eq!(b.shape(), [1, 4, 4]);
        assert_eq!(arena.fresh_allocs(), 1);
        assert_eq!(arena.recycled_allocs(), 1);
        assert_eq!(arena.retained_bytes(), 0);
    }

    #[test]
    fn recycled_buffers_are_zeroed() {
        let mut arena = TensorArena::new();
        let mut a = arena.alloc_zeroed([1, 2, 2]);
        a.map_inplace(|_| 7.5);
        arena.release(a);
        let b = arena.alloc_zeroed([1, 2, 2]);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn nearby_sizes_share_a_size_class() {
        let mut arena = TensorArena::new();
        let a = arena.alloc_zeroed([3, 32, 32]); // 3072 -> class 4096
        arena.release(a);
        let b = arena.alloc_zeroed([4, 32, 32]); // 4096 -> same class
        assert_eq!(b.len(), 4096);
        assert_eq!(arena.fresh_allocs(), 1);
        assert_eq!(arena.recycled_allocs(), 1);
    }

    #[test]
    fn different_classes_do_not_alias() {
        let mut arena = TensorArena::new();
        let a = arena.alloc_zeroed([1, 8, 8]); // class 64
        arena.release(a);
        let _b = arena.alloc_zeroed([2, 8, 8]); // class 128
        assert_eq!(arena.fresh_allocs(), 2);
        assert_eq!(arena.recycled_allocs(), 0);
    }

    #[test]
    fn grown_recycled_buffer_keeps_exact_length() {
        let mut arena = TensorArena::new();
        let a = arena.alloc_zeroed([1, 5, 5]); // len 25, class 64
        arena.release(a);
        let b = arena.take_buffer(40); // same class, longer request
        assert_eq!(b.len(), 40);
        assert!(b.iter().all(|&v| v == 0.0), "resized tail must be zeroed");
        arena.give_buffer(b);
        assert_eq!(arena.recycled_allocs(), 1);
    }

    #[test]
    fn size_class_rounds_up() {
        assert_eq!(size_class(1), MIN_CLASS);
        assert_eq!(size_class(64), 64);
        assert_eq!(size_class(65), 128);
        assert_eq!(size_class(3072), 4096);
        assert_eq!(size_class(4096), 4096);
    }

    #[test]
    fn alloc_copy_copies() {
        let mut arena = TensorArena::new();
        let src = Tensor::from_vec([1, 1, 3], vec![1.0, 2.0, 3.0]);
        let dup = arena.alloc_copy(&src);
        assert_eq!(dup, src);
    }
}
