//! A recycling allocator for activation tensors.
//!
//! Liveness-driven executors free each activation after its last use; this
//! arena keeps those freed buffers in size-keyed pools so the next
//! allocation of the same element count reuses the memory instead of hitting
//! the system allocator. Over a batch of images the steady state allocates
//! nothing: every tensor of every step is served from the pool filled by the
//! previous image.

use std::collections::HashMap;

use crate::tensor::Tensor;

/// Size-keyed free-list of tensor buffers.
///
/// # Examples
///
/// ```
/// use trtsim_ir::arena::TensorArena;
///
/// let mut arena = TensorArena::new();
/// let t = arena.alloc_zeroed([2, 3, 3]);
/// arena.release(t);
/// let _reused = arena.alloc_zeroed([2, 3, 3]); // same 18-element buffer
/// assert_eq!(arena.recycled_allocs(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TensorArena {
    /// Freed buffers by element count.
    free: HashMap<usize, Vec<Vec<f32>>>,
    retained_bytes: u64,
    peak_retained_bytes: u64,
    fresh_allocs: u64,
    recycled_allocs: u64,
}

impl TensorArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zero-filled tensor, recycling a freed buffer of the same element
    /// count when one is available.
    pub fn alloc_zeroed(&mut self, shape: [usize; 3]) -> Tensor {
        let len = shape[0] * shape[1] * shape[2];
        let mut data = self.take_buffer(len);
        data.iter_mut().for_each(|v| *v = 0.0);
        Tensor::from_vec(shape, data)
    }

    /// A tensor holding a copy of `src`, recycling a freed buffer when
    /// possible.
    pub fn alloc_copy(&mut self, src: &Tensor) -> Tensor {
        let mut data = self.take_buffer(src.len());
        data.copy_from_slice(src.as_slice());
        Tensor::from_vec(src.shape(), data)
    }

    /// A raw `len`-element scratch buffer (contents unspecified), recycled
    /// when possible. Pair with [`TensorArena::give_buffer`].
    pub fn take_buffer(&mut self, len: usize) -> Vec<f32> {
        match self.free.get_mut(&len).and_then(Vec::pop) {
            Some(buffer) => {
                self.recycled_allocs += 1;
                self.retained_bytes -= len as u64 * 4;
                buffer
            }
            None => {
                self.fresh_allocs += 1;
                vec![0.0; len]
            }
        }
    }

    /// Returns a scratch buffer to the pool.
    pub fn give_buffer(&mut self, buffer: Vec<f32>) {
        let len = buffer.len();
        if len == 0 {
            return;
        }
        self.retained_bytes += len as u64 * 4;
        self.peak_retained_bytes = self.peak_retained_bytes.max(self.retained_bytes);
        self.free.entry(len).or_default().push(buffer);
    }

    /// Releases a dead tensor's buffer into the pool.
    pub fn release(&mut self, tensor: Tensor) {
        self.give_buffer(tensor.into_vec());
    }

    /// Allocations served fresh from the system allocator.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }

    /// Allocations served by recycling a freed buffer.
    pub fn recycled_allocs(&self) -> u64 {
        self.recycled_allocs
    }

    /// Bytes currently parked in the free pool.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// High-water mark of [`TensorArena::retained_bytes`].
    pub fn peak_retained_bytes(&self) -> u64 {
        self.peak_retained_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_same_size_buffers() {
        let mut arena = TensorArena::new();
        let a = arena.alloc_zeroed([4, 2, 2]);
        arena.release(a);
        assert_eq!(arena.retained_bytes(), 64);
        let b = arena.alloc_zeroed([1, 4, 4]); // same 16 elements, new shape
        assert_eq!(b.shape(), [1, 4, 4]);
        assert_eq!(arena.fresh_allocs(), 1);
        assert_eq!(arena.recycled_allocs(), 1);
        assert_eq!(arena.retained_bytes(), 0);
    }

    #[test]
    fn recycled_buffers_are_zeroed() {
        let mut arena = TensorArena::new();
        let mut a = arena.alloc_zeroed([1, 2, 2]);
        a.map_inplace(|_| 7.5);
        arena.release(a);
        let b = arena.alloc_zeroed([1, 2, 2]);
        assert!(b.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn different_sizes_do_not_alias() {
        let mut arena = TensorArena::new();
        let a = arena.alloc_zeroed([1, 2, 2]);
        arena.release(a);
        let _b = arena.alloc_zeroed([1, 3, 3]);
        assert_eq!(arena.fresh_allocs(), 2);
        assert_eq!(arena.recycled_allocs(), 0);
    }

    #[test]
    fn alloc_copy_copies() {
        let mut arena = TensorArena::new();
        let src = Tensor::from_vec([1, 1, 3], vec![1.0, 2.0, 3.0]);
        let dup = arena.alloc_copy(&src);
        assert_eq!(dup, src);
    }
}
