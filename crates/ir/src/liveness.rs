//! Value liveness analysis over a topological graph.
//!
//! An interpreter that keeps every node's activation alive until the end of
//! the pass holds O(graph) tensors at once. Liveness — the last step at which
//! each value is read — lets an executor free (and recycle) a value's buffer
//! as soon as its final consumer has run, and lets a planner assign values to
//! a small set of reusable *slots* the way TensorRT binds activations to a
//! shared arena. Both [`crate::ReferenceExecutor`] and the engine runtime's
//! precompiled plan consume this analysis.

use crate::graph::{Graph, NodeId};

/// Sentinel "last use" for values that must outlive the whole pass (graph
/// outputs).
const LIVE_FOREVER: usize = usize::MAX;

/// Last-use information for every value of a graph.
///
/// # Examples
///
/// ```
/// use trtsim_ir::graph::{Graph, LayerKind};
/// use trtsim_ir::liveness::Liveness;
///
/// let mut g = Graph::new("chain", [3, 8, 8]);
/// let c1 = g.add_layer("c1", LayerKind::conv_seeded(4, 3, 3, 1, 1, 0), &[Graph::INPUT]);
/// let c2 = g.add_layer("c2", LayerKind::conv_seeded(4, 4, 3, 1, 1, 1), &[c1]);
/// g.mark_output(c2);
///
/// let live = Liveness::analyze(&g);
/// // c1 dies as soon as c2 has consumed it…
/// assert_eq!(live.dead_after(c2), &[c1]);
/// // …while the marked output survives the whole pass.
/// assert!(live.is_output(c2));
/// ```
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Per value: id of the node that reads it last, or [`LIVE_FOREVER`].
    last_use: Vec<usize>,
    /// Per step: values whose last use is that step (never contains outputs).
    dead_after: Vec<Vec<NodeId>>,
}

impl Liveness {
    /// Computes last-use steps for every value of `graph`.
    ///
    /// A value with no consumers that is not an output "dies" immediately
    /// after its producing step.
    pub fn analyze(graph: &Graph) -> Self {
        let n = graph.len();
        // A value is born at its own step; reads by later nodes extend it.
        // Nodes are topological by construction, so `max` is the last reader.
        let mut last_use: Vec<usize> = (0..n).collect();
        for node in graph.nodes().iter().skip(1) {
            for &input in &node.inputs {
                last_use[input] = last_use[input].max(node.id);
            }
        }
        for &output in graph.outputs() {
            last_use[output] = LIVE_FOREVER;
        }
        let mut dead_after: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (value, &at) in last_use.iter().enumerate() {
            if at != LIVE_FOREVER {
                dead_after[at].push(value);
            }
        }
        Self {
            last_use,
            dead_after,
        }
    }

    /// The step at which `value` is read for the last time (`None` for graph
    /// outputs, which live to the end of the pass).
    pub fn last_use(&self, value: NodeId) -> Option<NodeId> {
        (self.last_use[value] != LIVE_FOREVER).then_some(self.last_use[value])
    }

    /// Whether `value` is a graph output (never freed).
    pub fn is_output(&self, value: NodeId) -> bool {
        self.last_use[value] == LIVE_FOREVER
    }

    /// Whether `step` is the last reader of `value` — i.e. an executor may
    /// consume (move out of) the value's buffer while running `step`.
    pub fn dies_at(&self, value: NodeId, step: NodeId) -> bool {
        self.last_use[value] == step
    }

    /// Values whose buffers become dead once `step` has executed, in id
    /// order. Graph outputs never appear.
    pub fn dead_after(&self, step: NodeId) -> &[NodeId] {
        &self.dead_after[step]
    }

    /// Assigns every value to a reusable slot: a fresh slot is taken when a
    /// value is produced and returned to the free pool after its last use, so
    /// two values share a slot only when their live ranges are disjoint.
    pub fn assign_slots(&self) -> SlotAssignment {
        let n = self.last_use.len();
        let mut slot_of = vec![0usize; n];
        let mut free: Vec<usize> = Vec::new();
        let mut slot_count = 0usize;
        for value in 0..n {
            slot_of[value] = free.pop().unwrap_or_else(|| {
                slot_count += 1;
                slot_count - 1
            });
            // The slot frees only *after* the producing step completes, so a
            // step's output can never alias one of its own inputs.
            for &dead in self.dead_after(value) {
                free.push(slot_of[dead]);
            }
        }
        SlotAssignment {
            slot_of,
            slot_count,
        }
    }

    /// Simulates a liveness-driven pass over `shapes` (one per value, f32
    /// activations) and returns `(peak_live_bytes, total_bytes)`: the largest
    /// byte footprint of simultaneously-live values vs the sum a keep-
    /// everything interpreter holds at the end.
    pub fn activation_footprint(&self, shapes: &[[usize; 3]]) -> (u64, u64) {
        let bytes = |s: &[usize; 3]| (s[0] * s[1] * s[2]) as u64 * 4;
        let mut live = 0u64;
        let mut peak = 0u64;
        let mut total = 0u64;
        for (value, shape) in shapes.iter().enumerate() {
            let b = bytes(shape);
            total += b;
            live += b;
            peak = peak.max(live);
            for &dead in self.dead_after(value) {
                live -= bytes(&shapes[dead]);
            }
        }
        (peak, total)
    }
}

/// The result of [`Liveness::assign_slots`].
#[derive(Debug, Clone)]
pub struct SlotAssignment {
    /// Slot index of every value.
    pub slot_of: Vec<usize>,
    /// Number of distinct slots needed.
    pub slot_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EltwiseOp, LayerKind};

    fn chain(depth: usize) -> Graph {
        let mut g = Graph::new("chain", [2, 8, 8]);
        let mut prev = Graph::INPUT;
        for d in 0..depth {
            prev = g.add_layer(
                format!("c{d}"),
                LayerKind::conv_seeded(2, 2, 3, 1, 1, d as u64),
                &[prev],
            );
        }
        g.mark_output(prev);
        g
    }

    #[test]
    fn chain_frees_each_value_at_its_consumer() {
        let g = chain(5);
        let live = Liveness::analyze(&g);
        for id in 0..g.len() - 1 {
            assert_eq!(live.last_use(id), Some(id + 1));
            assert_eq!(live.dead_after(id + 1), &[id]);
        }
        assert!(live.is_output(g.len() - 1));
    }

    #[test]
    fn deep_chain_peak_live_is_far_below_total() {
        let g = chain(12);
        let live = Liveness::analyze(&g);
        let shapes = g.infer_shapes().unwrap();
        let (peak, total) = live.activation_footprint(&shapes);
        // Only a producer/consumer pair is ever live: 2 tensors vs 13.
        assert!(peak < total, "{peak} !< {total}");
        assert!(
            peak <= total / 4,
            "chain should reuse buffers: {peak} vs {total}"
        );
    }

    #[test]
    fn deep_chain_needs_constant_slots() {
        let g = chain(12);
        let slots = Liveness::analyze(&g).assign_slots();
        // input + one in flight + the held output region.
        assert!(slots.slot_count <= 3, "{}", slots.slot_count);
        assert_eq!(slots.slot_of.len(), g.len());
    }

    #[test]
    fn slots_never_alias_live_values() {
        // Branchy graph: input feeds two convs, joined by an eltwise sum.
        let mut g = Graph::new("branch", [2, 8, 8]);
        let a = g.add_layer(
            "a",
            LayerKind::conv_seeded(2, 2, 3, 1, 1, 1),
            &[Graph::INPUT],
        );
        let b = g.add_layer(
            "b",
            LayerKind::conv_seeded(2, 2, 3, 1, 1, 2),
            &[Graph::INPUT],
        );
        let s = g.add_layer("s", LayerKind::Eltwise { op: EltwiseOp::Sum }, &[a, b]);
        g.mark_output(s);
        let live = Liveness::analyze(&g);
        let slots = live.assign_slots();

        // Replay the schedule and check the invariant directly.
        let mut owner: Vec<Option<NodeId>> = vec![None; slots.slot_count];
        for value in 0..g.len() {
            let slot = slots.slot_of[value];
            assert!(
                owner[slot].is_none(),
                "slot {slot} still owned by {:?} when {value} is produced",
                owner[slot]
            );
            owner[slot] = Some(value);
            for &dead in live.dead_after(value) {
                owner[slots.slot_of[dead]] = None;
            }
        }
    }

    #[test]
    fn outputs_survive_and_are_never_freed() {
        let mut g = Graph::new("two-out", [2, 4, 4]);
        let a = g.add_layer(
            "a",
            LayerKind::conv_seeded(2, 2, 3, 1, 1, 1),
            &[Graph::INPUT],
        );
        let b = g.add_layer("b", LayerKind::conv_seeded(2, 2, 3, 1, 1, 2), &[a]);
        g.mark_output(a);
        g.mark_output(b);
        let live = Liveness::analyze(&g);
        assert!(live.is_output(a) && live.is_output(b));
        for step in 0..g.len() {
            assert!(!live.dead_after(step).contains(&a));
        }
    }
}
