//! Shape inference for every layer kind.

use crate::error::IrError;
use crate::graph::{Arity, LayerKind};

/// Infers the output shape of `kind` given its input shapes.
///
/// # Errors
///
/// Returns [`IrError::ArityMismatch`], [`IrError::ShapeMismatch`], or
/// [`IrError::WeightSizeMismatch`] when the node is inconsistent.
pub fn infer(
    kind: &LayerKind,
    inputs: &[[usize; 3]],
    node_name: &str,
) -> Result<[usize; 3], IrError> {
    check_arity(kind, inputs.len(), node_name)?;
    let shape_err = |detail: String| IrError::ShapeMismatch {
        node: node_name.to_string(),
        detail,
    };

    match kind {
        LayerKind::Input => unreachable!("input nodes are handled by the graph"),
        LayerKind::Conv(c) => {
            let [ic, h, w] = inputs[0];
            if ic != c.in_channels {
                return Err(shape_err(format!(
                    "conv expects {} input channels, got {ic}",
                    c.in_channels
                )));
            }
            if c.groups == 0 || c.in_channels % c.groups != 0 || c.out_channels % c.groups != 0 {
                return Err(shape_err(format!(
                    "groups {} must divide in {} and out {}",
                    c.groups, c.in_channels, c.out_channels
                )));
            }
            if c.stride == 0 || c.kernel_h == 0 || c.kernel_w == 0 {
                return Err(shape_err("kernel and stride must be positive".into()));
            }
            let expected = c.expected_weight_len();
            if c.weights.len() != expected {
                return Err(IrError::WeightSizeMismatch {
                    node: node_name.to_string(),
                    expected,
                    actual: c.weights.len(),
                });
            }
            if !c.bias.is_empty() && c.bias.len() != c.out_channels {
                return Err(IrError::WeightSizeMismatch {
                    node: node_name.to_string(),
                    expected: c.out_channels,
                    actual: c.bias.len(),
                });
            }
            let oh = conv_extent(h, c.kernel_h, c.stride, c.pad_h).ok_or_else(|| {
                shape_err(format!("kernel {} exceeds padded height {h}", c.kernel_h))
            })?;
            let ow = conv_extent(w, c.kernel_w, c.stride, c.pad_w).ok_or_else(|| {
                shape_err(format!("kernel {} exceeds padded width {w}", c.kernel_w))
            })?;
            Ok([c.out_channels, oh, ow])
        }
        LayerKind::Pool {
            kernel,
            stride,
            pad,
            ..
        } => {
            let [c, h, w] = inputs[0];
            if *stride == 0 || *kernel == 0 {
                return Err(shape_err("kernel and stride must be positive".into()));
            }
            let oh = conv_extent(h, *kernel, *stride, *pad)
                .ok_or_else(|| shape_err(format!("pool window {kernel} exceeds height {h}")))?;
            let ow = conv_extent(w, *kernel, *stride, *pad)
                .ok_or_else(|| shape_err(format!("pool window {kernel} exceeds width {w}")))?;
            Ok([c, oh, ow])
        }
        LayerKind::GlobalPool { .. } => Ok([inputs[0][0], 1, 1]),
        LayerKind::InnerProduct {
            out_features,
            in_features,
            weights,
            bias,
            ..
        } => {
            let flat = inputs[0][0] * inputs[0][1] * inputs[0][2];
            if flat != *in_features {
                return Err(shape_err(format!(
                    "inner product expects {in_features} input features, got {flat}"
                )));
            }
            if weights.len() != out_features * in_features {
                return Err(IrError::WeightSizeMismatch {
                    node: node_name.to_string(),
                    expected: out_features * in_features,
                    actual: weights.len(),
                });
            }
            if !bias.is_empty() && bias.len() != *out_features {
                return Err(IrError::WeightSizeMismatch {
                    node: node_name.to_string(),
                    expected: *out_features,
                    actual: bias.len(),
                });
            }
            Ok([*out_features, 1, 1])
        }
        LayerKind::Act(_)
        | LayerKind::Lrn { .. }
        | LayerKind::Softmax
        | LayerKind::Dropout { .. }
        | LayerKind::Identity => Ok(inputs[0]),
        LayerKind::BatchNorm {
            mean,
            var,
            gamma,
            beta,
            ..
        } => {
            let c = inputs[0][0];
            for (label, v) in [
                ("mean", mean),
                ("var", var),
                ("gamma", gamma),
                ("beta", beta),
            ] {
                if v.len() != c {
                    return Err(shape_err(format!(
                        "batchnorm {label} has {} entries for {c} channels",
                        v.len()
                    )));
                }
            }
            Ok(inputs[0])
        }
        LayerKind::Scale { scale, bias } => {
            let c = inputs[0][0];
            if scale.len() != c || (!bias.is_empty() && bias.len() != c) {
                return Err(shape_err(format!(
                    "scale has {} multipliers / {} offsets for {c} channels",
                    scale.len(),
                    bias.len()
                )));
            }
            Ok(inputs[0])
        }
        LayerKind::Eltwise { .. } => {
            let first = inputs[0];
            if inputs.iter().any(|s| *s != first) {
                return Err(shape_err(format!("eltwise inputs differ: {inputs:?}")));
            }
            Ok(first)
        }
        LayerKind::Concat => {
            let [_, h, w] = inputs[0];
            if inputs.iter().any(|s| s[1] != h || s[2] != w) {
                return Err(shape_err(format!(
                    "concat inputs have mismatched spatial dims: {inputs:?}"
                )));
            }
            Ok([inputs.iter().map(|s| s[0]).sum(), h, w])
        }
        LayerKind::Upsample { factor } => {
            if *factor == 0 {
                return Err(shape_err("upsample factor must be positive".into()));
            }
            let [c, h, w] = inputs[0];
            Ok([c, h * factor, w * factor])
        }
        LayerKind::Flatten => {
            let [c, h, w] = inputs[0];
            Ok([c * h * w, 1, 1])
        }
        LayerKind::Slice { begin, len } => {
            let [c, h, w] = inputs[0];
            if begin + len > c || *len == 0 {
                return Err(shape_err(format!(
                    "slice [{begin}, {}) exceeds {c} channels",
                    begin + len
                )));
            }
            Ok([*len, h, w])
        }
    }
}

/// Output extent of a strided window op: `floor((in + 2·pad − k)/s) + 1`,
/// or `None` if the window exceeds the padded input.
pub fn conv_extent(input: usize, kernel: usize, stride: usize, pad: usize) -> Option<usize> {
    let padded = input + 2 * pad;
    if kernel > padded {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

fn check_arity(kind: &LayerKind, actual: usize, node_name: &str) -> Result<(), IrError> {
    let ok = match kind.arity() {
        Arity::Exact(n) => actual == n,
        Arity::AtLeast(n) => actual >= n,
    };
    if ok {
        Ok(())
    } else {
        let expected = match kind.arity() {
            Arity::Exact(n) | Arity::AtLeast(n) => n,
        };
        Err(IrError::ArityMismatch {
            node: node_name.to_string(),
            expected,
            actual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EltwiseOp, PoolKind};

    #[test]
    fn conv_shapes() {
        let k = LayerKind::conv_seeded(16, 3, 3, 1, 1, 0);
        assert_eq!(infer(&k, &[[3, 32, 32]], "c").unwrap(), [16, 32, 32]);
        let k = LayerKind::conv_seeded(16, 3, 3, 2, 1, 0);
        assert_eq!(infer(&k, &[[3, 32, 32]], "c").unwrap(), [16, 16, 16]);
        let k = LayerKind::conv_seeded(16, 3, 7, 2, 3, 0);
        assert_eq!(infer(&k, &[[3, 224, 224]], "c").unwrap(), [16, 112, 112]);
    }

    #[test]
    fn conv_channel_mismatch_errors() {
        let k = LayerKind::conv_seeded(16, 4, 3, 1, 1, 0);
        assert!(matches!(
            infer(&k, &[[3, 32, 32]], "c"),
            Err(IrError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn pool_shapes() {
        let k = LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 3,
            stride: 2,
            pad: 0,
        };
        assert_eq!(infer(&k, &[[64, 55, 55]], "p").unwrap(), [64, 27, 27]);
    }

    #[test]
    fn global_pool_collapses_space() {
        let k = LayerKind::GlobalPool {
            kind: PoolKind::Avg,
        };
        assert_eq!(infer(&k, &[[128, 7, 7]], "gp").unwrap(), [128, 1, 1]);
    }

    #[test]
    fn concat_sums_channels() {
        assert_eq!(
            infer(
                &LayerKind::Concat,
                &[[8, 4, 4], [16, 4, 4], [4, 4, 4]],
                "cc"
            )
            .unwrap(),
            [28, 4, 4]
        );
    }

    #[test]
    fn concat_rejects_spatial_mismatch() {
        assert!(infer(&LayerKind::Concat, &[[8, 4, 4], [8, 5, 4]], "cc").is_err());
    }

    #[test]
    fn eltwise_requires_equal_shapes() {
        let k = LayerKind::Eltwise { op: EltwiseOp::Sum };
        assert_eq!(infer(&k, &[[8, 4, 4], [8, 4, 4]], "e").unwrap(), [8, 4, 4]);
        assert!(infer(&k, &[[8, 4, 4], [9, 4, 4]], "e").is_err());
    }

    #[test]
    fn eltwise_arity_enforced() {
        let k = LayerKind::Eltwise { op: EltwiseOp::Sum };
        assert!(matches!(
            infer(&k, &[[8, 4, 4]], "e"),
            Err(IrError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn flatten_and_upsample() {
        assert_eq!(
            infer(&LayerKind::Flatten, &[[8, 4, 4]], "f").unwrap(),
            [128, 1, 1]
        );
        assert_eq!(
            infer(&LayerKind::Upsample { factor: 2 }, &[[8, 4, 4]], "u").unwrap(),
            [8, 8, 8]
        );
    }

    #[test]
    fn inner_product_checks_features() {
        let k = LayerKind::fc_seeded(10, 128, 0);
        assert_eq!(infer(&k, &[[8, 4, 4]], "fc").unwrap(), [10, 1, 1]);
        assert!(infer(&k, &[[8, 4, 5]], "fc").is_err());
    }

    #[test]
    fn oversized_window_is_error() {
        let k = LayerKind::Pool {
            kind: PoolKind::Max,
            kernel: 9,
            stride: 1,
            pad: 0,
        };
        assert!(infer(&k, &[[8, 4, 4]], "p").is_err());
    }

    #[test]
    fn conv_extent_boundaries() {
        assert_eq!(conv_extent(5, 5, 1, 0), Some(1));
        assert_eq!(conv_extent(5, 6, 1, 0), None);
        assert_eq!(conv_extent(5, 6, 1, 1), Some(2));
    }

    #[test]
    fn batchnorm_validates_channel_vectors() {
        let k = LayerKind::BatchNorm {
            mean: vec![0.0; 4],
            var: vec![1.0; 4],
            gamma: vec![1.0; 4],
            beta: vec![0.0; 3], // wrong
            eps: 1e-5,
        };
        assert!(infer(&k, &[[4, 2, 2]], "bn").is_err());
    }
}
