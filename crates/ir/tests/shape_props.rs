//! Property tests for shape inference and the reference executor.

use proptest::prelude::*;
use trtsim_ir::graph::{Graph, LayerKind, PoolKind};
use trtsim_ir::shape::conv_extent;
use trtsim_ir::{ReferenceExecutor, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conv_extent_matches_loop_count(
        input in 1usize..64,
        kernel in 1usize..8,
        stride in 1usize..4,
        pad in 0usize..4,
    ) {
        match conv_extent(input, kernel, stride, pad) {
            Some(extent) => {
                // Count valid window positions directly.
                let padded = input + 2 * pad;
                let mut count = 0;
                let mut pos = 0;
                while pos + kernel <= padded {
                    count += 1;
                    pos += stride;
                }
                prop_assert_eq!(extent, count);
                prop_assert!(extent >= 1);
            }
            None => prop_assert!(kernel > input + 2 * pad),
        }
    }

    #[test]
    fn conv_output_shape_matches_execution(
        in_c in 1usize..4,
        out_c in 1usize..6,
        size in 4usize..12,
        kernel in 1usize..4,
        stride in 1usize..3,
    ) {
        prop_assume!(kernel <= size);
        let pad = kernel / 2;
        let mut g = Graph::new("p", [in_c, size, size]);
        let c = g.add_layer(
            "c",
            LayerKind::conv_seeded(out_c, in_c, kernel, stride, pad, 1),
            &[Graph::INPUT],
        );
        g.mark_output(c);
        let shapes = g.infer_shapes().unwrap();
        let exec = ReferenceExecutor::new(&g).unwrap();
        let out = exec.run(&Tensor::zeros([in_c, size, size])).unwrap();
        prop_assert_eq!(out[0].shape(), shapes[c]);
    }

    #[test]
    fn pooling_never_grows_spatial_dims(
        c in 1usize..4,
        size in 4usize..16,
        kernel in 1usize..4,
        stride in 1usize..4,
    ) {
        prop_assume!(kernel <= size);
        let mut g = Graph::new("p", [c, size, size]);
        let p = g.add_layer(
            "p",
            LayerKind::Pool { kind: PoolKind::Max, kernel, stride, pad: 0 },
            &[Graph::INPUT],
        );
        g.mark_output(p);
        let shapes = g.infer_shapes().unwrap();
        prop_assert!(shapes[p][1] <= size);
        prop_assert!(shapes[p][2] <= size);
    }

    #[test]
    fn max_pool_output_bounded_by_input_range(
        seed in 0u64..500,
        size in 4usize..10,
    ) {
        let mut rng = trtsim_util::rng::Pcg32::seed_from_u64(seed);
        let input = Tensor::from_fn([2, size, size], |_, _, _| rng.normal() as f32);
        let out = trtsim_ir::ops::pool2d(&input, PoolKind::Max, 2, 2, 0);
        let in_max = input.as_slice().iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        for &v in out.as_slice() {
            prop_assert!(v <= in_max + 1e-6);
        }
    }

    #[test]
    fn relu_conv_outputs_nonnegative(seed in 0u64..500) {
        let mut rng = trtsim_util::rng::Pcg32::seed_from_u64(seed);
        let mut g = Graph::new("p", [2, 6, 6]);
        let c = g.add_layer("c", LayerKind::conv_seeded(3, 2, 3, 1, 1, seed), &[Graph::INPUT]);
        g.mark_output(c);
        let input = Tensor::from_fn([2, 6, 6], |_, _, _| rng.normal() as f32);
        let out = ReferenceExecutor::new(&g).unwrap().run(&input).unwrap();
        for &v in out[0].as_slice() {
            prop_assert!(v >= 0.0);
        }
    }

    #[test]
    fn softmax_is_a_distribution(seed in 0u64..500, n in 2usize..32) {
        let mut rng = trtsim_util::rng::Pcg32::seed_from_u64(seed);
        let input = Tensor::from_fn([n, 1, 1], |_, _, _| (rng.normal() * 10.0) as f32);
        let out = trtsim_ir::ops::softmax(&input);
        let sum: f32 = out.as_slice().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(out.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
