//! Synthetic developing-region traffic scenes with ground-truth boxes, and
//! open-loop request-arrival traces for fleet serving.
//!
//! The paper trains and tests vehicle-detection CNNs on a labeled traffic
//! dataset (3896 train / 1670 test images) and reports precision/recall at
//! IoU 0.75. This module generates controlled substitutes: each scene is a
//! road background with a seeded number of vehicles, each rendered as a
//! textured rectangle whose geometry is the ground truth.
//!
//! The [`ArrivalTrace`] half generates the *when* instead of the *what*: a
//! seeded, sorted list of simulated arrival timestamps for open-loop traffic
//! — homogeneous Poisson, a diurnal (sinusoidal-rate) cycle, and on/off
//! bursts — the request streams a device fleet is driven with instead of a
//! closed submit loop.

use trtsim_ir::tensor::Tensor;
use trtsim_util::derive_seed;
use trtsim_util::rng::Pcg32;

/// Vehicle classes labeled in the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VehicleClass {
    /// Cars and similar light vehicles.
    Car,
    /// Buses.
    Bus,
    /// Trucks.
    Truck,
    /// Two-wheelers (the dominant class in developing-region traffic).
    Motorbike,
}

impl VehicleClass {
    /// All classes.
    pub fn all() -> [VehicleClass; 4] {
        [
            VehicleClass::Car,
            VehicleClass::Bus,
            VehicleClass::Truck,
            VehicleClass::Motorbike,
        ]
    }

    /// Typical (height, width) extent in pixels at the dataset's scale.
    fn extent(self, rng: &mut Pcg32) -> (usize, usize) {
        let (h, w) = match self {
            VehicleClass::Car => (6, 8),
            VehicleClass::Bus => (10, 14),
            VehicleClass::Truck => (9, 12),
            VehicleClass::Motorbike => (4, 3),
        };
        (h + rng.range_usize(3), w + rng.range_usize(3))
    }
}

/// An axis-aligned bounding box with a class label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Left edge (pixels).
    pub x: f32,
    /// Top edge (pixels).
    pub y: f32,
    /// Width (pixels).
    pub w: f32,
    /// Height (pixels).
    pub h: f32,
    /// Vehicle class.
    pub class: VehicleClass,
}

impl BBox {
    /// Box area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BBox) -> f32 {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w).min(other.x + other.w);
        let y2 = (self.y + self.h).min(other.y + other.h);
        let inter = (x2 - x1).max(0.0) * (y2 - y1).max(0.0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// One rendered scene with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficScene {
    /// The image, CHW.
    pub image: Tensor,
    /// Ground-truth vehicle boxes.
    pub boxes: Vec<BBox>,
}

/// A seeded generator of traffic scenes.
///
/// # Examples
///
/// ```
/// use trtsim_data::TrafficDataset;
/// let data = TrafficDataset::new([3, 32, 32], 11);
/// let scene = data.scene(0);
/// assert!(!scene.boxes.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TrafficDataset {
    shape: [usize; 3],
    seed: u64,
}

impl TrafficDataset {
    /// Creates a generator producing scenes of the given shape.
    pub fn new(shape: [usize; 3], seed: u64) -> Self {
        assert!(shape[1] >= 16 && shape[2] >= 16, "scene too small");
        Self { shape, seed }
    }

    /// Scene shape.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Deterministically generates scene `index`.
    pub fn scene(&self, index: usize) -> TrafficScene {
        let mut rng = Pcg32::seed_from_u64(derive_seed(self.seed, "scene", index as u64));
        let [c, h, w] = self.shape;
        // Road background: dark with lane-line stripes and texture noise.
        let mut image = Tensor::from_fn([c, h, w], |_, y, x| {
            let lane = if x % (w / 4).max(1) == 0 { 0.4 } else { 0.0 };
            0.1 + lane + 0.02 * ((y * 31 + x * 17) % 7) as f32
        });
        let n_vehicles = 1 + rng.range_usize(5);
        let mut boxes = Vec::with_capacity(n_vehicles);
        for _ in 0..n_vehicles {
            let class = *rng.choose(&VehicleClass::all()).expect("non-empty");
            let (bh, bw) = class.extent(&mut rng);
            let bh = bh.min(h - 2);
            let bw = bw.min(w - 2);
            let y0 = rng.range_usize(h - bh);
            let x0 = rng.range_usize(w - bw);
            let tone = 0.5 + 0.5 * rng.next_f32();
            for ch in 0..c {
                let channel_tone = tone * (0.6 + 0.4 * ((ch + 1) as f32 / c as f32));
                for y in y0..y0 + bh {
                    for x in x0..x0 + bw {
                        *image.at_mut(ch, y, x) = channel_tone;
                    }
                }
            }
            boxes.push(BBox {
                x: x0 as f32,
                y: y0 as f32,
                w: bw as f32,
                h: bh as f32,
                class,
            });
        }
        TrafficScene { image, boxes }
    }

    /// The paper's split sizes, scaled: `n` test scenes.
    pub fn test_set(&self, n: usize) -> Vec<TrafficScene> {
        (0..n).map(|i| self.scene(i)).collect()
    }
}

/// A seeded open-loop arrival trace: sorted simulated timestamps, µs.
///
/// Each constructor draws from its own PCG stream, so the same parameters
/// replay bit-identically and different seeds diverge. The non-homogeneous
/// processes (diurnal, burst) are generated by thinning: candidate arrivals
/// are drawn at the peak rate and kept with probability `rate(t) / peak`,
/// which preserves the exact Poisson statistics within every rate regime.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// Non-decreasing arrival timestamps, simulated µs.
    pub arrivals_us: Vec<f64>,
}

impl ArrivalTrace {
    /// Homogeneous Poisson arrivals: exponential gaps with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap_us` is not a positive finite number.
    pub fn poisson(mean_gap_us: f64, frames: usize, seed: u64) -> Self {
        assert!(
            mean_gap_us.is_finite() && mean_gap_us > 0.0,
            "mean gap must be positive, got {mean_gap_us}"
        );
        let mut rng = Pcg32::seed_from_u64(derive_seed(seed, "arrivals", 0));
        let mut clock = 0.0f64;
        let arrivals_us = (0..frames)
            .map(|_| {
                clock += exponential_gap(&mut rng, mean_gap_us);
                clock
            })
            .collect();
        Self { arrivals_us }
    }

    /// Diurnal cycle: the rate swings sinusoidally between `1/base_gap_us`
    /// (trough) and `1/peak_gap_us` (crest) with period `cycle_us`, starting
    /// at the trough. Models the day/night load curve a production fleet
    /// sees.
    ///
    /// # Panics
    ///
    /// Panics if either gap is not positive-finite, if the peak gap exceeds
    /// the base gap (the peak must be the *faster* regime), or if `cycle_us`
    /// is not positive-finite.
    pub fn diurnal(
        base_gap_us: f64,
        peak_gap_us: f64,
        cycle_us: f64,
        frames: usize,
        seed: u64,
    ) -> Self {
        assert!(
            base_gap_us.is_finite() && base_gap_us > 0.0,
            "base gap must be positive, got {base_gap_us}"
        );
        assert!(
            peak_gap_us.is_finite() && peak_gap_us > 0.0 && peak_gap_us <= base_gap_us,
            "peak gap must be positive and no larger than the base gap"
        );
        assert!(
            cycle_us.is_finite() && cycle_us > 0.0,
            "cycle must be positive, got {cycle_us}"
        );
        let trough = 1.0 / base_gap_us;
        let crest = 1.0 / peak_gap_us;
        Self::thinned(crest, frames, seed, |t| {
            let phase = (t / cycle_us) * std::f64::consts::TAU;
            // cos starts at 1 → rate starts at the trough.
            trough + (crest - trough) * 0.5 * (1.0 - phase.cos())
        })
    }

    /// On/off bursts: the first `burst_fraction` of every `cycle_us` window
    /// runs at `1/burst_gap_us`, the rest at `1/quiet_gap_us`. Models
    /// synchronized camera keyframes / retry storms.
    ///
    /// # Panics
    ///
    /// Panics if either gap is not positive-finite, if the burst gap exceeds
    /// the quiet gap, if `cycle_us` is not positive-finite, or if
    /// `burst_fraction` is outside `(0, 1)`.
    pub fn burst(
        quiet_gap_us: f64,
        burst_gap_us: f64,
        cycle_us: f64,
        burst_fraction: f64,
        frames: usize,
        seed: u64,
    ) -> Self {
        assert!(
            quiet_gap_us.is_finite() && quiet_gap_us > 0.0,
            "quiet gap must be positive, got {quiet_gap_us}"
        );
        assert!(
            burst_gap_us.is_finite() && burst_gap_us > 0.0 && burst_gap_us <= quiet_gap_us,
            "burst gap must be positive and no larger than the quiet gap"
        );
        assert!(
            cycle_us.is_finite() && cycle_us > 0.0,
            "cycle must be positive, got {cycle_us}"
        );
        assert!(
            burst_fraction > 0.0 && burst_fraction < 1.0,
            "burst fraction must be in (0, 1), got {burst_fraction}"
        );
        let quiet = 1.0 / quiet_gap_us;
        let peak = 1.0 / burst_gap_us;
        Self::thinned(peak, frames, seed, move |t| {
            if (t / cycle_us).fract() < burst_fraction {
                peak
            } else {
                quiet
            }
        })
    }

    /// Non-homogeneous Poisson by thinning at `peak_rate` (arrivals/µs).
    fn thinned(peak_rate: f64, frames: usize, seed: u64, rate: impl Fn(f64) -> f64) -> Self {
        let mut rng = Pcg32::seed_from_u64(derive_seed(seed, "arrivals", 1));
        let mut clock = 0.0f64;
        let mut arrivals_us = Vec::with_capacity(frames);
        while arrivals_us.len() < frames {
            clock += exponential_gap(&mut rng, 1.0 / peak_rate);
            if rng.next_f64() * peak_rate <= rate(clock) {
                arrivals_us.push(clock);
            }
        }
        Self { arrivals_us }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals_us.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals_us.is_empty()
    }

    /// Time of the last arrival, µs (0 for an empty trace).
    pub fn duration_us(&self) -> f64 {
        self.arrivals_us.last().copied().unwrap_or(0.0)
    }

    /// Offered load over the whole trace, arrivals per simulated second.
    pub fn offered_rate_fps(&self) -> f64 {
        if self.arrivals_us.len() < 2 {
            return 0.0;
        }
        self.len() as f64 / (self.duration_us() / 1e6).max(1e-12)
    }
}

/// One inverse-CDF exponential gap with the given mean; `1 - u ∈ (0, 1]`
/// keeps the log finite.
fn exponential_gap(rng: &mut Pcg32, mean_us: f64) -> f64 {
    -mean_us * (1.0 - rng.next_f64()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenes_are_deterministic() {
        let d = TrafficDataset::new([3, 32, 32], 1);
        assert_eq!(d.scene(5), d.scene(5));
        assert_ne!(d.scene(5).image, d.scene(6).image);
    }

    #[test]
    fn boxes_are_inside_the_image() {
        let d = TrafficDataset::new([3, 32, 48], 2);
        for i in 0..20 {
            for b in d.scene(i).boxes {
                assert!(b.x >= 0.0 && b.y >= 0.0);
                assert!(b.x + b.w <= 48.0);
                assert!(b.y + b.h <= 32.0);
                assert!(b.area() > 0.0);
            }
        }
    }

    #[test]
    fn vehicles_are_brighter_than_road() {
        let d = TrafficDataset::new([3, 32, 32], 3);
        let scene = d.scene(0);
        let b = scene.boxes[0];
        let inside = scene
            .image
            .at(0, (b.y + 1.0) as usize, (b.x + 1.0) as usize);
        // Road baseline is ~0.1.
        assert!(inside > 0.25, "vehicle not visible: {inside}");
    }

    #[test]
    fn iou_identities() {
        let b = BBox {
            x: 2.0,
            y: 3.0,
            w: 4.0,
            h: 5.0,
            class: VehicleClass::Car,
        };
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
        let far = BBox { x: 100.0, ..b };
        assert_eq!(b.iou(&far), 0.0);
        let half = BBox { x: 4.0, ..b };
        assert!(b.iou(&half) > 0.0 && b.iou(&half) < 1.0);
        assert!((b.iou(&half) - half.iou(&b)).abs() < 1e-6);
    }

    #[test]
    fn test_set_has_requested_size() {
        assert_eq!(TrafficDataset::new([3, 32, 32], 4).test_set(17).len(), 17);
    }

    fn assert_monotone(trace: &ArrivalTrace) {
        assert!(trace.arrivals_us.windows(2).all(|w| w[0] <= w[1]));
        assert!(trace.arrivals_us.first().copied().unwrap_or(1.0) > 0.0);
    }

    #[test]
    fn poisson_trace_is_seeded_and_monotone() {
        let a = ArrivalTrace::poisson(1000.0, 256, 9);
        let b = ArrivalTrace::poisson(1000.0, 256, 9);
        assert_eq!(a, b, "same seed must replay bit-identically");
        assert_ne!(a, ArrivalTrace::poisson(1000.0, 256, 10));
        assert_eq!(a.len(), 256);
        assert_monotone(&a);
        // Mean gap within loose bounds of the configured 1 ms.
        let mean = a.duration_us() / a.len() as f64;
        assert!((600.0..1700.0).contains(&mean), "mean gap {mean}");
        assert!(a.offered_rate_fps() > 0.0);
    }

    #[test]
    fn diurnal_trace_rate_swings_with_the_cycle() {
        // One full cycle; the crest half must hold well more arrivals than
        // the trough half.
        let cycle = 1_000_000.0;
        let trace = ArrivalTrace::diurnal(4000.0, 400.0, cycle, 512, 3);
        assert_monotone(&trace);
        assert_eq!(trace, ArrivalTrace::diurnal(4000.0, 400.0, cycle, 512, 3));
        let crest_half = trace
            .arrivals_us
            .iter()
            .filter(|&&t| {
                let phase = (t / cycle).fract();
                (0.25..0.75).contains(&phase)
            })
            .count();
        let in_first_cycle = trace.arrivals_us.iter().filter(|&&t| t < cycle).count();
        assert!(
            crest_half * 2 > in_first_cycle,
            "crest half {crest_half} of {in_first_cycle} in cycle"
        );
    }

    #[test]
    fn burst_trace_clusters_inside_the_burst_window() {
        let cycle = 100_000.0;
        let trace = ArrivalTrace::burst(5000.0, 250.0, cycle, 0.2, 512, 5);
        assert_monotone(&trace);
        let in_burst = trace
            .arrivals_us
            .iter()
            .filter(|&&t| (t / cycle).fract() < 0.2)
            .count();
        // The burst window is 20% of the time but runs 20x faster, so it
        // must hold the strong majority of arrivals.
        assert!(
            in_burst * 2 > trace.len(),
            "{in_burst} of {} arrivals in burst windows",
            trace.len()
        );
    }

    #[test]
    #[should_panic(expected = "mean gap must be positive")]
    fn poisson_rejects_non_positive_gap() {
        let _ = ArrivalTrace::poisson(0.0, 1, 0);
    }
}
