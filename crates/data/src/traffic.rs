//! Synthetic developing-region traffic scenes with ground-truth boxes.
//!
//! The paper trains and tests vehicle-detection CNNs on a labeled traffic
//! dataset (3896 train / 1670 test images) and reports precision/recall at
//! IoU 0.75. This module generates controlled substitutes: each scene is a
//! road background with a seeded number of vehicles, each rendered as a
//! textured rectangle whose geometry is the ground truth.

use trtsim_ir::tensor::Tensor;
use trtsim_util::derive_seed;
use trtsim_util::rng::Pcg32;

/// Vehicle classes labeled in the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VehicleClass {
    /// Cars and similar light vehicles.
    Car,
    /// Buses.
    Bus,
    /// Trucks.
    Truck,
    /// Two-wheelers (the dominant class in developing-region traffic).
    Motorbike,
}

impl VehicleClass {
    /// All classes.
    pub fn all() -> [VehicleClass; 4] {
        [
            VehicleClass::Car,
            VehicleClass::Bus,
            VehicleClass::Truck,
            VehicleClass::Motorbike,
        ]
    }

    /// Typical (height, width) extent in pixels at the dataset's scale.
    fn extent(self, rng: &mut Pcg32) -> (usize, usize) {
        let (h, w) = match self {
            VehicleClass::Car => (6, 8),
            VehicleClass::Bus => (10, 14),
            VehicleClass::Truck => (9, 12),
            VehicleClass::Motorbike => (4, 3),
        };
        (h + rng.range_usize(3), w + rng.range_usize(3))
    }
}

/// An axis-aligned bounding box with a class label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Left edge (pixels).
    pub x: f32,
    /// Top edge (pixels).
    pub y: f32,
    /// Width (pixels).
    pub w: f32,
    /// Height (pixels).
    pub h: f32,
    /// Vehicle class.
    pub class: VehicleClass,
}

impl BBox {
    /// Box area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Intersection-over-union with another box.
    pub fn iou(&self, other: &BBox) -> f32 {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.w).min(other.x + other.w);
        let y2 = (self.y + self.h).min(other.y + other.h);
        let inter = (x2 - x1).max(0.0) * (y2 - y1).max(0.0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

/// One rendered scene with its ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficScene {
    /// The image, CHW.
    pub image: Tensor,
    /// Ground-truth vehicle boxes.
    pub boxes: Vec<BBox>,
}

/// A seeded generator of traffic scenes.
///
/// # Examples
///
/// ```
/// use trtsim_data::TrafficDataset;
/// let data = TrafficDataset::new([3, 32, 32], 11);
/// let scene = data.scene(0);
/// assert!(!scene.boxes.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TrafficDataset {
    shape: [usize; 3],
    seed: u64,
}

impl TrafficDataset {
    /// Creates a generator producing scenes of the given shape.
    pub fn new(shape: [usize; 3], seed: u64) -> Self {
        assert!(shape[1] >= 16 && shape[2] >= 16, "scene too small");
        Self { shape, seed }
    }

    /// Scene shape.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// Deterministically generates scene `index`.
    pub fn scene(&self, index: usize) -> TrafficScene {
        let mut rng = Pcg32::seed_from_u64(derive_seed(self.seed, "scene", index as u64));
        let [c, h, w] = self.shape;
        // Road background: dark with lane-line stripes and texture noise.
        let mut image = Tensor::from_fn([c, h, w], |_, y, x| {
            let lane = if x % (w / 4).max(1) == 0 { 0.4 } else { 0.0 };
            0.1 + lane + 0.02 * ((y * 31 + x * 17) % 7) as f32
        });
        let n_vehicles = 1 + rng.range_usize(5);
        let mut boxes = Vec::with_capacity(n_vehicles);
        for _ in 0..n_vehicles {
            let class = *rng.choose(&VehicleClass::all()).expect("non-empty");
            let (bh, bw) = class.extent(&mut rng);
            let bh = bh.min(h - 2);
            let bw = bw.min(w - 2);
            let y0 = rng.range_usize(h - bh);
            let x0 = rng.range_usize(w - bw);
            let tone = 0.5 + 0.5 * rng.next_f32();
            for ch in 0..c {
                let channel_tone = tone * (0.6 + 0.4 * ((ch + 1) as f32 / c as f32));
                for y in y0..y0 + bh {
                    for x in x0..x0 + bw {
                        *image.at_mut(ch, y, x) = channel_tone;
                    }
                }
            }
            boxes.push(BBox {
                x: x0 as f32,
                y: y0 as f32,
                w: bw as f32,
                h: bh as f32,
                class,
            });
        }
        TrafficScene { image, boxes }
    }

    /// The paper's split sizes, scaled: `n` test scenes.
    pub fn test_set(&self, n: usize) -> Vec<TrafficScene> {
        (0..n).map(|i| self.scene(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenes_are_deterministic() {
        let d = TrafficDataset::new([3, 32, 32], 1);
        assert_eq!(d.scene(5), d.scene(5));
        assert_ne!(d.scene(5).image, d.scene(6).image);
    }

    #[test]
    fn boxes_are_inside_the_image() {
        let d = TrafficDataset::new([3, 32, 48], 2);
        for i in 0..20 {
            for b in d.scene(i).boxes {
                assert!(b.x >= 0.0 && b.y >= 0.0);
                assert!(b.x + b.w <= 48.0);
                assert!(b.y + b.h <= 32.0);
                assert!(b.area() > 0.0);
            }
        }
    }

    #[test]
    fn vehicles_are_brighter_than_road() {
        let d = TrafficDataset::new([3, 32, 32], 3);
        let scene = d.scene(0);
        let b = scene.boxes[0];
        let inside = scene
            .image
            .at(0, (b.y + 1.0) as usize, (b.x + 1.0) as usize);
        // Road baseline is ~0.1.
        assert!(inside > 0.25, "vehicle not visible: {inside}");
    }

    #[test]
    fn iou_identities() {
        let b = BBox {
            x: 2.0,
            y: 3.0,
            w: 4.0,
            h: 5.0,
            class: VehicleClass::Car,
        };
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
        let far = BBox { x: 100.0, ..b };
        assert_eq!(b.iou(&far), 0.0);
        let half = BBox { x: 4.0, ..b };
        assert!(b.iou(&half) > 0.0 && b.iou(&half) < 1.0);
        assert!((b.iou(&half) - half.iou(&b)).abs() < 1e-6);
    }

    #[test]
    fn test_set_has_requested_size() {
        assert_eq!(TrafficDataset::new([3, 32, 32], 4).test_set(17).len(), 17);
    }
}
