//! The paper's 15 corruption families × 5 severities (ImageNet-C style).
//!
//! "We additionally use an adversarially perturbed image dataset consisting
//! of images with 15 different types of noises and five different severity
//! levels" (§II-D). The families below follow the ImageNet-C taxonomy:
//! noise (3), blur (4), weather (4), and digital (4) corruptions, each
//! parameterized so severity 5 is far more damaging than severity 1.

use trtsim_ir::tensor::Tensor;
use trtsim_util::rng::Pcg32;

/// Corruption severity, 1 (mild) through 5 (harsh).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Severity(u8);

impl Severity {
    /// Creates a severity level.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ level ≤ 5`.
    pub fn new(level: u8) -> Self {
        assert!((1..=5).contains(&level), "severity must be 1..=5");
        Severity(level)
    }

    /// The raw level.
    pub fn level(self) -> u8 {
        self.0
    }

    /// A normalized intensity in `(0, 1]`.
    pub fn intensity(self) -> f32 {
        f32::from(self.0) / 5.0
    }
}

/// The 15 corruption families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Corruption {
    /// Additive white Gaussian noise.
    GaussianNoise,
    /// Poisson-like photon noise.
    ShotNoise,
    /// Salt-and-pepper noise.
    ImpulseNoise,
    /// Uniform disk blur.
    DefocusBlur,
    /// Local pixel shuffling behind frosted glass.
    GlassBlur,
    /// Directional blur.
    MotionBlur,
    /// Radial blur toward the center.
    ZoomBlur,
    /// Additive bright speckles on a dimmed image.
    Snow,
    /// Low-frequency occlusion patches.
    Frost,
    /// Additive smooth haze pulling pixels toward a fog value.
    Fog,
    /// Global brightness shift.
    Brightness,
    /// Contrast reduction toward the mean.
    Contrast,
    /// Smooth spatial warping.
    ElasticTransform,
    /// Block down-sampling.
    Pixelate,
    /// Coarse value quantization (DCT-free JPEG stand-in).
    JpegCompression,
}

impl Corruption {
    /// All 15 families in the ImageNet-C order.
    pub fn all() -> [Corruption; 15] {
        use Corruption::*;
        [
            GaussianNoise,
            ShotNoise,
            ImpulseNoise,
            DefocusBlur,
            GlassBlur,
            MotionBlur,
            ZoomBlur,
            Snow,
            Frost,
            Fog,
            Brightness,
            Contrast,
            ElasticTransform,
            Pixelate,
            JpegCompression,
        ]
    }

    /// Short snake-case label.
    pub fn label(self) -> &'static str {
        use Corruption::*;
        match self {
            GaussianNoise => "gaussian_noise",
            ShotNoise => "shot_noise",
            ImpulseNoise => "impulse_noise",
            DefocusBlur => "defocus_blur",
            GlassBlur => "glass_blur",
            MotionBlur => "motion_blur",
            ZoomBlur => "zoom_blur",
            Snow => "snow",
            Frost => "frost",
            Fog => "fog",
            Brightness => "brightness",
            Contrast => "contrast",
            ElasticTransform => "elastic_transform",
            Pixelate => "pixelate",
            JpegCompression => "jpeg_compression",
        }
    }
}

/// Applies a corruption at a severity; deterministic in `seed`.
pub fn apply_corruption(
    image: &Tensor,
    corruption: Corruption,
    severity: Severity,
    seed: u64,
) -> Tensor {
    let mut rng = Pcg32::seed_from_u64(seed ^ (corruption as u64) << 8 ^ u64::from(severity.0));
    let s = severity.intensity();
    let mut out = image.clone();
    match corruption {
        Corruption::GaussianNoise => {
            let sd = 1.2 * s;
            for v in out.as_mut_slice() {
                *v += sd * rng.normal() as f32;
            }
        }
        Corruption::ShotNoise => {
            // Signal-dependent noise ∝ sqrt(|x|).
            let sd = 1.4 * s;
            for v in out.as_mut_slice() {
                *v += sd * v.abs().sqrt() * rng.normal() as f32;
            }
        }
        Corruption::ImpulseNoise => {
            let amax = image.amax().max(1.0);
            let p = 0.25 * f64::from(s);
            for v in out.as_mut_slice() {
                if rng.chance(p) {
                    *v = if rng.chance(0.5) {
                        2.0 * amax
                    } else {
                        -2.0 * amax
                    };
                }
            }
        }
        Corruption::DefocusBlur => {
            let radius = (1.0 + 4.0 * s).round() as isize;
            out = box_blur(image, radius);
        }
        Corruption::GlassBlur => {
            let reach = (1.0 + 4.0 * s) as isize;
            let [c, h, w] = image.shape();
            out = Tensor::from_fn([c, h, w], |ch, y, x| {
                let dy = rng.range_u64((2 * reach + 1) as u64) as isize - reach;
                let dx = rng.range_u64((2 * reach + 1) as u64) as isize - reach;
                let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                image.at(ch, sy, sx)
            });
        }
        Corruption::MotionBlur => {
            let taps = (1.0 + 6.0 * s).round() as isize;
            let [c, h, w] = image.shape();
            out = Tensor::from_fn([c, h, w], |ch, y, x| {
                let mut acc = 0.0;
                for t in 0..taps {
                    let sx = (x as isize + t).clamp(0, w as isize - 1) as usize;
                    acc += image.at(ch, y, sx);
                }
                acc / taps as f32
            });
        }
        Corruption::ZoomBlur => {
            let [c, h, w] = image.shape();
            let steps = 4;
            let max_zoom = 1.0 + 0.3 * f64::from(s);
            out = Tensor::from_fn([c, h, w], |ch, y, x| {
                let mut acc = 0.0;
                for k in 0..steps {
                    let z = 1.0 + (max_zoom - 1.0) * k as f64 / steps as f64;
                    let cy = h as f64 / 2.0;
                    let cx = w as f64 / 2.0;
                    let sy = (cy + (y as f64 - cy) / z).clamp(0.0, h as f64 - 1.0) as usize;
                    let sx = (cx + (x as f64 - cx) / z).clamp(0.0, w as f64 - 1.0) as usize;
                    acc += image.at(ch, sy, sx);
                }
                acc / steps as f32
            });
        }
        Corruption::Snow => {
            let amax = image.amax().max(1.0);
            let dim = 1.0 - 0.3 * s;
            let p = 0.15 * f64::from(s);
            for v in out.as_mut_slice() {
                *v *= dim;
                if rng.chance(p) {
                    *v = 1.8 * amax;
                }
            }
        }
        Corruption::Frost => {
            let [c, h, w] = image.shape();
            let patches = (2.0 + 8.0 * s) as usize;
            let amax = image.amax().max(1.0);
            for _ in 0..patches {
                let py = rng.range_usize(h);
                let px = rng.range_usize(w);
                let r = 1 + rng.range_usize((1.0 + 3.0 * s) as usize + 1);
                for ch in 0..c {
                    for y in py.saturating_sub(r)..(py + r).min(h) {
                        for x in px.saturating_sub(r)..(px + r).min(w) {
                            *out.at_mut(ch, y, x) = 0.7 * amax;
                        }
                    }
                }
            }
        }
        Corruption::Fog => {
            let amax = image.amax().max(1.0);
            let t = 0.7 * s; // haze strength
            for v in out.as_mut_slice() {
                *v = (1.0 - t) * *v + t * 0.8 * amax;
            }
        }
        Corruption::Brightness => {
            let amax = image.amax().max(1.0);
            let shift = 0.8 * s * amax;
            for v in out.as_mut_slice() {
                *v += shift;
            }
        }
        Corruption::Contrast => {
            let mean: f32 = image.as_slice().iter().sum::<f32>() / image.len().max(1) as f32;
            let k = 1.0 - 0.85 * s;
            for v in out.as_mut_slice() {
                *v = mean + (*v - mean) * k;
            }
        }
        Corruption::ElasticTransform => {
            let [c, h, w] = image.shape();
            let amp = 4.0 * f64::from(s);
            let fy = rng.uniform(1.0, 2.0);
            let fx = rng.uniform(1.0, 2.0);
            let py = rng.uniform(0.0, std::f64::consts::TAU);
            let px = rng.uniform(0.0, std::f64::consts::TAU);
            out = Tensor::from_fn([c, h, w], |ch, y, x| {
                let dy = amp * (std::f64::consts::TAU * fx * x as f64 / w as f64 + py).sin();
                let dx = amp * (std::f64::consts::TAU * fy * y as f64 / h as f64 + px).sin();
                let sy = (y as f64 + dy).clamp(0.0, h as f64 - 1.0) as usize;
                let sx = (x as f64 + dx).clamp(0.0, w as f64 - 1.0) as usize;
                image.at(ch, sy, sx)
            });
        }
        Corruption::Pixelate => {
            let block = 1 + (5.0 * s) as usize;
            let [c, h, w] = image.shape();
            out = Tensor::from_fn([c, h, w], |ch, y, x| {
                let by = (y / block) * block;
                let bx = (x / block) * block;
                image.at(ch, by.min(h - 1), bx.min(w - 1))
            });
        }
        Corruption::JpegCompression => {
            let amax = image.amax().max(1e-6);
            let levels = (64.0 * (1.0 - 0.9 * s)).max(2.0);
            for v in out.as_mut_slice() {
                let q = (*v / amax * levels).round() / levels * amax;
                *v = q;
            }
        }
    }
    out
}

fn box_blur(image: &Tensor, radius: isize) -> Tensor {
    let [c, h, w] = image.shape();
    Tensor::from_fn([c, h, w], |ch, y, x| {
        let mut acc = 0.0;
        let mut n = 0;
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                let sy = y as isize + dy;
                let sx = x as isize + dx;
                if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                    acc += image.at(ch, sy as usize, sx as usize);
                    n += 1;
                }
            }
        }
        acc / n as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_util::rng::Pcg32;

    fn image() -> Tensor {
        let mut rng = Pcg32::seed_from_u64(5);
        Tensor::from_fn([3, 16, 16], |_, y, x| {
            ((y as f32 / 4.0).sin() + (x as f32 / 3.0).cos()) + 0.1 * rng.normal() as f32
        })
    }

    fn distortion(a: &Tensor, b: &Tensor) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            / a.len() as f32
    }

    #[test]
    fn all_families_distort() {
        let img = image();
        for c in Corruption::all() {
            let out = apply_corruption(&img, c, Severity::new(3), 0);
            assert_eq!(out.shape(), img.shape());
            assert!(distortion(&img, &out) > 1e-6, "{} did nothing", c.label());
            assert!(out.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn severity_5_distorts_more_than_1() {
        let img = image();
        for c in Corruption::all() {
            let mild = apply_corruption(&img, c, Severity::new(1), 0);
            let harsh = apply_corruption(&img, c, Severity::new(5), 0);
            assert!(
                distortion(&img, &harsh) > distortion(&img, &mild),
                "{} severity ordering broken",
                c.label()
            );
        }
    }

    #[test]
    fn corruption_is_deterministic() {
        let img = image();
        for c in [
            Corruption::GaussianNoise,
            Corruption::GlassBlur,
            Corruption::Frost,
        ] {
            let a = apply_corruption(&img, c, Severity::new(4), 9);
            let b = apply_corruption(&img, c, Severity::new(4), 9);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn there_are_fifteen_families() {
        let all = Corruption::all();
        assert_eq!(all.len(), 15);
        let mut labels: Vec<&str> = all.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 15);
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn severity_zero_rejected() {
        Severity::new(0);
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn severity_six_rejected() {
        Severity::new(6);
    }
}
