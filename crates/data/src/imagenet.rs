//! Class-prototype synthetic image generator (the "benign" dataset).

use trtsim_ir::tensor::Tensor;
use trtsim_util::derive_seed;
use trtsim_util::rng::Pcg32;

/// One image with its ground-truth class.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledImage {
    /// The image, CHW.
    pub image: Tensor,
    /// Ground-truth class index.
    pub label: usize,
}

/// A deterministic generative dataset of `classes` classes.
///
/// Each class has a smooth prototype (a seeded mixture of 2-D sinusoids per
/// channel). A sample is `signal · prototype + noise`, with per-sample noise
/// drawn from a seed derived from `(class, index)` so every consumer sees the
/// same images.
///
/// # Examples
///
/// ```
/// use trtsim_data::SyntheticImageNet;
/// let data = SyntheticImageNet::new(10, [3, 16, 16], 42);
/// let a = data.sample(3, 0);
/// let b = data.sample(3, 0);
/// assert_eq!(a.image, b.image);
/// assert_eq!(a.label, 3);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticImageNet {
    classes: usize,
    shape: [usize; 3],
    seed: u64,
    /// Prototype amplitude multiplier.
    signal: f32,
    /// Pixel-noise standard deviation.
    noise: f32,
}

impl SyntheticImageNet {
    /// Creates a dataset. Default difficulty: `signal = 1.0`, `noise = 1.0`.
    pub fn new(classes: usize, shape: [usize; 3], seed: u64) -> Self {
        assert!(classes > 0, "need at least one class");
        Self {
            classes,
            shape,
            seed,
            signal: 1.0,
            noise: 1.0,
        }
    }

    /// Sets the signal-to-noise ratio (difficulty dial).
    pub fn with_snr(mut self, signal: f32, noise: f32) -> Self {
        self.signal = signal;
        self.noise = noise;
        self
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image shape.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// The class prototype: what a noiseless class member looks like.
    pub fn prototype(&self, class: usize) -> Tensor {
        assert!(class < self.classes, "class out of range");
        let mut rng = Pcg32::seed_from_u64(derive_seed(self.seed, "prototype", class as u64));
        let [c, h, w] = self.shape;
        // A few random 2-D sinusoid components per channel: smooth, distinct,
        // zero-mean patterns (natural-image-like low-frequency structure).
        let mut out = Tensor::zeros(self.shape);
        for ch in 0..c {
            let components: Vec<(f64, f64, f64, f64)> = (0..4)
                .map(|_| {
                    (
                        rng.uniform(0.5, 3.0),                   // fy
                        rng.uniform(0.5, 3.0),                   // fx
                        rng.uniform(0.0, std::f64::consts::TAU), // phase
                        rng.uniform(0.4, 1.0),                   // amplitude
                    )
                })
                .collect();
            for y in 0..h {
                for x in 0..w {
                    let mut v = 0.0;
                    for &(fy, fx, phase, amp) in &components {
                        let arg = std::f64::consts::TAU
                            * (fy * y as f64 / h as f64 + fx * x as f64 / w as f64)
                            + phase;
                        v += amp * arg.sin();
                    }
                    *out.at_mut(ch, y, x) = v as f32;
                }
            }
        }
        out
    }

    /// Deterministic sample `index` of `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn sample(&self, class: usize, index: usize) -> LabeledImage {
        let proto = self.prototype(class);
        let mut rng = Pcg32::seed_from_u64(derive_seed(
            self.seed,
            "sample",
            (class as u64) << 32 | index as u64,
        ));
        let mut image = proto;
        let signal = self.signal;
        let noise = self.noise;
        image.map_inplace(|v| v * signal);
        for v in image.as_mut_slice() {
            *v += noise * rng.normal() as f32;
        }
        LabeledImage {
            image,
            label: class,
        }
    }

    /// The full evaluation set: `per_class` samples of every class.
    pub fn evaluation_set(&self, per_class: usize) -> Vec<LabeledImage> {
        let mut out = Vec::with_capacity(self.classes * per_class);
        for class in 0..self.classes {
            for index in 0..per_class {
                out.push(self.sample(class, index));
            }
        }
        out
    }

    /// A calibration batch (one image of each of the first `n` classes).
    pub fn calibration_batch(&self, n: usize) -> Vec<Tensor> {
        (0..n.min(self.classes))
            .map(|c| self.sample(c, usize::MAX / 2).image)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> SyntheticImageNet {
        SyntheticImageNet::new(8, [3, 16, 16], 7)
    }

    #[test]
    fn prototypes_are_deterministic_and_distinct() {
        let d = data();
        assert_eq!(d.prototype(0), d.prototype(0));
        let a = d.prototype(0);
        let b = d.prototype(1);
        let diff: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1.0, "prototypes too similar");
    }

    #[test]
    fn samples_vary_within_class() {
        let d = data();
        let a = d.sample(2, 0);
        let b = d.sample(2, 1);
        assert_ne!(a.image, b.image);
        assert_eq!(a.label, b.label);
    }

    #[test]
    fn samples_correlate_with_their_prototype() {
        let d = data().with_snr(2.0, 0.5);
        let proto = d.prototype(4);
        let img = d.sample(4, 0).image;
        let corr_own = correlation(&img, &proto);
        let corr_other = correlation(&img, &d.prototype(5));
        assert!(corr_own > corr_other, "{corr_own} vs {corr_other}");
    }

    fn correlation(a: &Tensor, b: &Tensor) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| x * y)
            .sum()
    }

    #[test]
    fn evaluation_set_is_balanced() {
        let set = data().evaluation_set(5);
        assert_eq!(set.len(), 40);
        for c in 0..8 {
            assert_eq!(set.iter().filter(|s| s.label == c).count(), 5);
        }
    }

    #[test]
    fn snr_controls_noise_level() {
        let clean = data().with_snr(1.0, 0.01).sample(0, 0).image;
        let noisy = data().with_snr(1.0, 2.0).sample(0, 0).image;
        let proto = data().prototype(0);
        let dev = |img: &Tensor| -> f32 {
            img.as_slice()
                .iter()
                .zip(proto.as_slice())
                .map(|(x, y)| (x - y).abs())
                .sum()
        };
        assert!(dev(&noisy) > 10.0 * dev(&clean));
    }

    #[test]
    fn calibration_batch_sized() {
        assert_eq!(data().calibration_batch(4).len(), 4);
        assert_eq!(data().calibration_batch(100).len(), 8);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn class_bounds_checked() {
        data().prototype(8);
    }
}
