//! Synthetic datasets standing in for the paper's image corpora.
//!
//! The paper evaluates on (a) an ImageNet subset ("benign data"), (b) the
//! same images under 15 corruption families at 5 severities ("adversarial
//! data", the ImageNet-C construction of Hendrycks & Dietterich), and (c) a
//! developing-region traffic dataset with vehicle bounding boxes. None of
//! those corpora can ship with a simulator, so this crate generates
//! statistically controlled substitutes:
//!
//! * [`imagenet`] — a class-prototype generative model: each class has a
//!   deterministic smooth prototype image, and samples are
//!   `signal · prototype + pixel noise`. Classification difficulty (and thus
//!   top-1 error) is set by the signal-to-noise ratio, which lets the
//!   experiment harness hit the paper's error-rate regime honestly: the
//!   *deltas* between engines are measured, the absolute level is dialed in.
//! * [`corruptions`] — the 15 corruption families of the paper's adversarial
//!   set, each with 5 severity levels.
//! * [`traffic`] — seeded traffic scenes with ground-truth vehicle boxes for
//!   the detection-metric path (IoU-0.75 precision/recall), plus seeded
//!   open-loop arrival traces (Poisson / diurnal / burst) that drive the
//!   fleet serving layer.

#![warn(missing_docs)]

pub mod corruptions;
pub mod imagenet;
pub mod traffic;

pub use corruptions::{apply_corruption, Corruption, Severity};
pub use imagenet::{LabeledImage, SyntheticImageNet};
pub use traffic::{ArrivalTrace, BBox, TrafficDataset, TrafficScene, VehicleClass};
