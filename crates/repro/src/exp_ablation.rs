//! Ablation studies beyond the paper's tables (DESIGN.md §5 extensions):
//! what each optimization contributes, and what damps the non-determinism.
//!
//! * **Pass ablation** — rebuild an engine with individual Figure 2 passes
//!   disabled and compare latency: quantifies vertical fusion's launch/DRAM
//!   savings and horizontal merging's occupancy gains.
//! * **Precision ablation** — FP32-only vs FP16 vs FP16+INT8 engines.
//! * **avgTiming ablation** — TensorRT's `avgTiming` knob averages several
//!   tactic-timing samples; sweeping it shows how measurement averaging
//!   suppresses build-to-build kernel-set variation (the practical
//!   mitigation for Findings 2/6 short of shipping one plan).

use std::collections::BTreeSet;

use trtsim_core::runtime::{ExecutionContext, TimingOptions};
use trtsim_core::{Builder, BuilderConfig};
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_kernels::catalog::PrecisionPolicy;
use trtsim_metrics::top1_error_percent;
use trtsim_models::ModelId;
use trtsim_util::derive_seed;

use crate::exp_accuracy::{AccuracyConfig, AccuracySetup};
use crate::support::{TextTable, CAMPAIGN_SEED};

/// One pass-ablation variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// All passes enabled (production build).
    Full,
    /// Vertical fusion disabled.
    NoVerticalFusion,
    /// Horizontal merging disabled.
    NoHorizontalMerge,
    /// Dead-layer removal disabled.
    NoDeadLayer,
    /// All graph passes disabled.
    NoPasses,
}

impl Variant {
    /// All variants, baseline first.
    pub fn all() -> [Variant; 5] {
        [
            Variant::Full,
            Variant::NoVerticalFusion,
            Variant::NoHorizontalMerge,
            Variant::NoDeadLayer,
            Variant::NoPasses,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Full => "full pipeline",
            Variant::NoVerticalFusion => "no vertical fusion",
            Variant::NoHorizontalMerge => "no horizontal merge",
            Variant::NoDeadLayer => "no dead-layer removal",
            Variant::NoPasses => "no graph passes",
        }
    }

    fn config(self) -> BuilderConfig {
        let base = BuilderConfig::default().with_build_seed(derive_seed(
            CAMPAIGN_SEED,
            "ablation",
            self as u64,
        ));
        match self {
            Variant::Full => base,
            Variant::NoVerticalFusion => {
                let mut c = base;
                c.enable_vertical_fusion = false;
                c
            }
            Variant::NoHorizontalMerge => {
                let mut c = base;
                c.enable_horizontal_merge = false;
                c
            }
            Variant::NoDeadLayer => {
                let mut c = base;
                c.enable_dead_layer = false;
                c
            }
            Variant::NoPasses => base.without_graph_passes(),
        }
    }
}

/// One pass-ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant.
    pub variant: Variant,
    /// Kernel launches per inference.
    pub launches: usize,
    /// Latency (no profiler, engine resident), ms.
    pub latency_ms: f64,
    /// Plan size, MiB.
    pub plan_mib: f64,
}

/// Runs the pass ablation for one model on NX.
pub fn run_pass_ablation(model: ModelId) -> Vec<AblationRow> {
    let device = DeviceSpec::pinned_clock(Platform::Nx);
    let network = model.descriptor();
    Variant::all()
        .into_iter()
        .map(|variant| {
            let engine = Builder::new(device.clone(), variant.config())
                .build(&network)
                .expect("ablation build");
            let ctx = ExecutionContext::new(&engine, device.clone());
            let opts = TimingOptions::default()
                .without_engine_upload()
                .with_host_glue_us(model.info().host_glue_us)
                .with_run_jitter_sd(0.0);
            AblationRow {
                variant,
                launches: engine.launch_count(),
                latency_ms: ctx.measure_latency(&opts, 1, 0)[0] / 1000.0,
                plan_mib: engine.plan_size_bytes() as f64 / (1 << 20) as f64,
            }
        })
        .collect()
}

/// Renders the pass ablation.
pub fn render_pass_ablation(model: ModelId, rows: &[AblationRow]) -> String {
    let mut t = TextTable::new(vec![
        "variant".into(),
        "launches".into(),
        "latency (ms)".into(),
        "plan (MiB)".into(),
        "slowdown".into(),
    ]);
    let base = rows[0].latency_ms;
    for r in rows {
        t.row(vec![
            r.variant.label().into(),
            r.launches.to_string(),
            format!("{:.2}", r.latency_ms),
            format!("{:.2}", r.plan_mib),
            format!("{:.2}x", r.latency_ms / base),
        ]);
    }
    format!(
        "Ablation: optimization passes ({model}, NX)\n{}",
        t.render()
    )
}

/// One precision-ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct PrecisionRow {
    /// Policy label.
    pub policy: &'static str,
    /// Latency, ms.
    pub latency_ms: f64,
    /// Plan size, MiB.
    pub plan_mib: f64,
    /// Layer precision mix (fp32, fp16, int8).
    pub mix: (usize, usize, usize),
}

/// Runs the precision ablation for one model on NX.
pub fn run_precision_ablation(model: ModelId) -> Vec<PrecisionRow> {
    let device = DeviceSpec::pinned_clock(Platform::Nx);
    let network = model.descriptor();
    [
        ("FP32 only", PrecisionPolicy::fp32_only()),
        ("FP16 (default)", PrecisionPolicy::fp16()),
    ]
    .into_iter()
    .map(|(label, policy)| {
        let config = BuilderConfig::default()
            .with_build_seed(derive_seed(CAMPAIGN_SEED, "precision", model as u64))
            .with_policy(policy);
        let engine = Builder::new(device.clone(), config)
            .build(&network)
            .expect("precision build");
        let ctx = ExecutionContext::new(&engine, device.clone());
        let opts = TimingOptions::default()
            .without_engine_upload()
            .with_host_glue_us(model.info().host_glue_us)
            .with_run_jitter_sd(0.0);
        PrecisionRow {
            policy: label,
            latency_ms: ctx.measure_latency(&opts, 1, 0)[0] / 1000.0,
            plan_mib: engine.plan_size_bytes() as f64 / (1 << 20) as f64,
            mix: engine.precision_mix(),
        }
    })
    .collect()
}

/// Renders the precision ablation.
pub fn render_precision_ablation(model: ModelId, rows: &[PrecisionRow]) -> String {
    let mut t = TextTable::new(vec![
        "policy".into(),
        "latency (ms)".into(),
        "plan (MiB)".into(),
        "fp32/fp16/int8 layers".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.policy.into(),
            format!("{:.2}", r.latency_ms),
            format!("{:.2}", r.plan_mib),
            format!("{}/{}/{}", r.mix.0, r.mix.1, r.mix.2),
        ]);
    }
    format!("Ablation: precision policy ({model}, NX)\n{}", t.render())
}

/// INT8 end-to-end accuracy check: calibrate on real images, build an INT8
/// engine of a numeric classifier, and compare top-1 error against the FP16
/// engine and the FP32 reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Int8Row {
    /// Model.
    pub model: ModelId,
    /// FP32 reference error, percent.
    pub fp32_error: f64,
    /// FP16 engine error, percent.
    pub fp16_error: f64,
    /// INT8-enabled engine error, percent.
    pub int8_error: f64,
    /// Layers the INT8 engine actually ran quantized.
    pub int8_layers: usize,
}

/// Runs the INT8 accuracy study on a numeric classifier.
pub fn run_int8_accuracy(model: ModelId, config: &AccuracyConfig) -> Int8Row {
    let setup = AccuracySetup::new(model, config);
    let images = setup.benign(config);
    let labels: Vec<usize> = images.iter().map(|i| i.label).collect();

    let fp32 = setup.unopt_predictions(&images);
    let fp16_engine = setup.engine(Platform::Nx, 0);
    let fp16 = setup.engine_predictions(&fp16_engine, &images);

    let calibration = setup.dataset.calibration_batch(config.classes.min(8));
    let int8_engine = Builder::new(
        DeviceSpec::pinned_clock(Platform::Nx),
        BuilderConfig::default()
            .with_build_seed(derive_seed(CAMPAIGN_SEED, "int8", model as u64))
            .with_pruning(true)
            .with_calibration(calibration),
    )
    .build(&setup.network)
    .expect("int8 build");
    let int8 = setup.engine_predictions(&int8_engine, &images);

    Int8Row {
        model,
        fp32_error: top1_error_percent(&fp32, &labels),
        fp16_error: top1_error_percent(&fp16, &labels),
        int8_error: top1_error_percent(&int8, &labels),
        int8_layers: int8_engine.precision_mix().2,
    }
}

/// Renders the INT8 accuracy rows.
pub fn render_int8(rows: &[Int8Row]) -> String {
    let mut t = TextTable::new(vec![
        "model".into(),
        "FP32 err (%)".into(),
        "FP16 err (%)".into(),
        "INT8 err (%)".into(),
        "INT8 layers".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.model.to_string(),
            format!("{:.1}", r.fp32_error),
            format!("{:.1}", r.fp16_error),
            format!("{:.1}", r.int8_error),
            r.int8_layers.to_string(),
        ]);
    }
    format!(
        "Ablation: INT8 calibration accuracy (NX)
{}",
        t.render()
    )
}

/// One avgTiming row: distinct kernel mappings across rebuilds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvgTimingRow {
    /// Timing samples averaged per tactic measurement.
    pub samples: u32,
    /// Rebuilds performed.
    pub builds: u32,
    /// Distinct kernel mappings observed.
    pub distinct_mappings: usize,
}

/// Sweeps `avgTiming` and counts distinct kernel mappings over `builds`
/// rebuilds of `model`.
pub fn run_avgtiming_sweep(model: ModelId, builds: u32) -> Vec<AvgTimingRow> {
    let device = DeviceSpec::pinned_clock(Platform::Nx);
    let network = model.descriptor();
    [1u32, 2, 4, 8, 16]
        .into_iter()
        .map(|samples| {
            let mut mappings = BTreeSet::new();
            for i in 0..builds {
                let config = BuilderConfig::default()
                    .with_build_seed(derive_seed(
                        CAMPAIGN_SEED,
                        "avgtiming",
                        u64::from(samples) << 32 | u64::from(i),
                    ))
                    .with_timing_samples(samples);
                let engine = Builder::new(device.clone(), config)
                    .build(&network)
                    .expect("avgtiming build");
                mappings.insert(engine.kernel_names().join("|"));
            }
            AvgTimingRow {
                samples,
                builds,
                distinct_mappings: mappings.len(),
            }
        })
        .collect()
}

/// Renders the avgTiming sweep.
pub fn render_avgtiming(model: ModelId, rows: &[AvgTimingRow]) -> String {
    let mut t = TextTable::new(vec![
        "avgTiming samples".into(),
        "rebuilds".into(),
        "distinct kernel mappings".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.samples.to_string(),
            r.builds.to_string(),
            r.distinct_mappings.to_string(),
        ]);
    }
    format!(
        "Ablation: avgTiming vs build non-determinism ({model}, NX)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_ablation_costs_launches_and_time() {
        let rows = run_pass_ablation(ModelId::Googlenet);
        let full = &rows[0];
        let no_passes = rows
            .iter()
            .find(|r| r.variant == Variant::NoPasses)
            .unwrap();
        assert!(
            no_passes.launches > full.launches,
            "passes should cut launches"
        );
        assert!(
            no_passes.latency_ms > full.latency_ms,
            "unoptimized graph should be slower: {} vs {}",
            no_passes.latency_ms,
            full.latency_ms
        );
    }

    #[test]
    fn dead_layer_ablation_grows_googlenet_plan() {
        // GoogLeNet's aux heads survive without dead-layer removal.
        let rows = run_pass_ablation(ModelId::Googlenet);
        let full = &rows[0];
        let no_dead = rows
            .iter()
            .find(|r| r.variant == Variant::NoDeadLayer)
            .unwrap();
        assert!(no_dead.plan_mib > full.plan_mib + 3.0);
    }

    #[test]
    fn fp32_engines_are_slower_and_bigger() {
        let rows = run_precision_ablation(ModelId::Resnet18);
        let fp32 = &rows[0];
        let fp16 = &rows[1];
        assert!(fp32.latency_ms > fp16.latency_ms);
        assert!(fp32.plan_mib > fp16.plan_mib);
        assert_eq!(fp32.mix.1, 0, "fp32-only policy must not use fp16");
    }

    #[test]
    fn avgtiming_reduces_mapping_diversity() {
        let rows = run_avgtiming_sweep(ModelId::Mtcnn, 6);
        let at_1 = rows.iter().find(|r| r.samples == 1).unwrap();
        let at_16 = rows.iter().find(|r| r.samples == 16).unwrap();
        assert!(
            at_16.distinct_mappings <= at_1.distinct_mappings,
            "{} > {}",
            at_16.distinct_mappings,
            at_1.distinct_mappings
        );
    }

    #[test]
    fn int8_engines_stay_accurate() {
        let row = run_int8_accuracy(ModelId::Vgg16, &AccuracyConfig::quick());
        // INT8 with amax calibration tracks FP16 within a few points.
        assert!(
            row.int8_error <= row.fp16_error + 12.0,
            "INT8 {:.1}% vs FP16 {:.1}%",
            row.int8_error,
            row.fp16_error
        );
    }

    #[test]
    fn renders() {
        let rows = run_pass_ablation(ModelId::Mtcnn);
        assert!(render_pass_ablation(ModelId::Mtcnn, &rows).contains("slowdown"));
        let rows = run_precision_ablation(ModelId::Mtcnn);
        assert!(render_precision_ablation(ModelId::Mtcnn, &rows).contains("policy"));
        let rows = run_avgtiming_sweep(ModelId::Mtcnn, 3);
        assert!(render_avgtiming(ModelId::Mtcnn, &rows).contains("avgTiming"));
    }
}
