//! Tables XII and XIII: build-to-build engine variability on one platform.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use trtsim_core::runtime::ExecutionContext;
use trtsim_core::Engine;
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_gpu::timeline::GpuTimeline;
use trtsim_metrics::LatencyCell;
use trtsim_models::ModelId;
use trtsim_profiler::chrome_trace_json_multi;

use crate::support::{table8_options, EngineFarm, TextTable, RUNS};

/// Engines the paper builds per platform for variability studies.
pub const ENGINES_PER_PLATFORM: u64 = 3;

/// One Table XII row: three engines of one model, built and run on AGX.
#[derive(Debug, Clone, PartialEq)]
pub struct VariabilityRow {
    /// Model.
    pub model: ModelId,
    /// Latency of engines 1-3.
    pub engines: [LatencyCell; 3],
}

impl VariabilityRow {
    /// Spread between slowest and fastest engine, percent of the fastest.
    pub fn spread_percent(&self) -> f64 {
        let means: Vec<f64> = self.engines.iter().map(|c| c.mean_ms).collect();
        let min = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = means.iter().cloned().fold(0.0, f64::max);
        100.0 * (max - min) / min
    }
}

/// Computes Table XII for the given models (paper: all 13 on AGX).
pub fn run_table12(models: &[ModelId]) -> Vec<VariabilityRow> {
    let farm = EngineFarm::global();
    let wanted: Vec<_> = models
        .iter()
        .flat_map(|&m| (0..ENGINES_PER_PLATFORM).map(move |i| (m, Platform::Agx, i)))
        .collect();
    farm.prefetch_zoo(&wanted);
    models
        .iter()
        .map(|&model| {
            let opts = table8_options(model);
            let cells: Vec<LatencyCell> = (0..ENGINES_PER_PLATFORM)
                .map(|i| {
                    let engine = farm.zoo(model, Platform::Agx, i);
                    let ctx =
                        ExecutionContext::new(&engine, DeviceSpec::pinned_clock(Platform::Agx));
                    LatencyCell::from_runs_us(&ctx.measure_latency(&opts, RUNS, i))
                })
                .collect();
            VariabilityRow {
                model,
                engines: cells.try_into().expect("three engines"),
            }
        })
        .collect()
}

/// Renders Table XII.
pub fn render_table12(rows: &[VariabilityRow]) -> String {
    let mut t = TextTable::new(vec![
        "NN Model".into(),
        "Engine1".into(),
        "Engine2".into(),
        "Engine3".into(),
        "Spread".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.model.to_string(),
            r.engines[0].to_string(),
            r.engines[1].to_string(),
            r.engines[2].to_string(),
            format!("{:.1}%", r.spread_percent()),
        ]);
    }
    format!(
        "Table XII: run time of different TensorRT engines of the same model (AGX)\n{}",
        t.render()
    )
}

/// Table XIII: how often each kernel symbol is invoked by each engine build.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationTable {
    /// Model studied.
    pub model: ModelId,
    /// kernel symbol → invocation count per engine (index = build).
    pub counts: BTreeMap<String, Vec<usize>>,
}

impl InvocationTable {
    /// Kernel symbols whose invocation count differs across builds — the
    /// paper's "9, 8 and 6 calls" observation.
    pub fn varying_kernels(&self) -> Vec<&str> {
        self.counts
            .iter()
            .filter(|(_, v)| v.iter().any(|&c| c != v[0]))
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

/// Computes Table XIII for one model on AGX.
pub fn run_table13(model: ModelId) -> InvocationTable {
    let engines: Vec<Arc<Engine>> = (0..ENGINES_PER_PLATFORM)
        .map(|i| EngineFarm::global().zoo(model, Platform::Agx, i))
        .collect();
    let mut counts: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, engine) in engines.iter().enumerate() {
        for (name, n) in engine.kernel_invocations() {
            counts.entry(name).or_insert_with(|| vec![0; engines.len()])[i] = n;
        }
    }
    InvocationTable { model, counts }
}

/// Renders Table XIII (kernels with differing counts first).
pub fn render_table13(table: &InvocationTable) -> String {
    let mut t = TextTable::new(vec![
        "Kernel".into(),
        "Engine1 calls".into(),
        "Engine2 calls".into(),
        "Engine3 calls".into(),
    ]);
    let mut entries: Vec<(&String, &Vec<usize>)> = table.counts.iter().collect();
    entries.sort_by_key(|(name, v)| (v.iter().all(|&c| c == v[0]), (*name).clone()));
    for (name, v) in entries {
        t.row(
            std::iter::once(name.clone())
                .chain(v.iter().map(|c| c.to_string()))
                .collect(),
        );
    }
    format!(
        "Table XIII: kernel invocation counts across three {} engines (AGX)\n{}",
        table.model,
        t.render()
    )
}

/// Builds one timeline per engine build of `model` on AGX — the Table
/// XII/XIII subjects as traces. Each timeline holds `runs` inferences of one
/// build; feed a pair to `trtsim_profiler::anomaly::kernel_set_diff` to
/// recover the build-to-build kernel drift, or all of them to
/// [`write_variability_trace`] to view the builds side by side.
pub fn variability_trace_timelines(model: ModelId, runs: usize) -> Vec<GpuTimeline> {
    let opts = table8_options(model).without_engine_upload();
    (0..ENGINES_PER_PLATFORM)
        .map(|i| {
            let engine = EngineFarm::global().zoo(model, Platform::Agx, i);
            let device = DeviceSpec::pinned_clock(Platform::Agx);
            let ctx = ExecutionContext::new(&engine, device.clone());
            let mut tl = GpuTimeline::new(device);
            let s = tl.create_stream();
            for _ in 0..runs {
                ctx.enqueue_inference(&mut tl, s, &opts);
            }
            tl
        })
        .collect()
}

/// Writes every build's timeline into one chrome://tracing document, one
/// process per build, so the drifted kernel sets line up visually.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_variability_trace(
    path: impl AsRef<Path>,
    model: ModelId,
    runs: usize,
) -> std::io::Result<()> {
    let timelines = variability_trace_timelines(model, runs);
    let names: Vec<String> = (1..=timelines.len())
        .map(|i| format!("{model} engine{i}"))
        .collect();
    let pairs: Vec<(&str, &GpuTimeline)> = names
        .iter()
        .map(String::as_str)
        .zip(timelines.iter())
        .collect();
    std::fs::write(path, chrome_trace_json_multi(&pairs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_vary_across_engines() {
        // Finding 6: different engines of the same model differ in runtime.
        let rows = run_table12(&[ModelId::InceptionV4, ModelId::Resnet18]);
        let any_spread = rows.iter().any(|r| r.spread_percent() > 0.5);
        assert!(any_spread, "no build-to-build latency spread at all");
    }

    #[test]
    fn kernel_sets_vary_across_engines() {
        // Table XIII: invocation counts of at least one kernel symbol differ.
        let t = run_table13(ModelId::InceptionV4);
        assert!(
            !t.varying_kernels().is_empty(),
            "all three builds mapped to identical kernels"
        );
    }

    #[test]
    fn total_invocations_are_plausible() {
        let t = run_table13(ModelId::Resnet18);
        for v in t.counts.values() {
            assert_eq!(v.len(), 3);
        }
        let totals: Vec<usize> = (0..3)
            .map(|i| t.counts.values().map(|v| v[i]).sum())
            .collect();
        for total in totals {
            assert!(total >= 20, "ResNet-18 engine too small: {total}");
        }
    }

    #[test]
    fn trace_timelines_reflect_build_drift() {
        let timelines = variability_trace_timelines(ModelId::InceptionV4, 1);
        assert_eq!(timelines.len() as u64, ENGINES_PER_PLATFORM);
        // At least one pair of builds must differ in the kernel records, the
        // drift Table XIII counts.
        let names = |tl: &GpuTimeline| {
            let mut v: Vec<String> = tl.kernels().iter().map(|k| k.name.clone()).collect();
            v.sort();
            v
        };
        let distinct = timelines
            .iter()
            .skip(1)
            .any(|tl| names(tl) != names(&timelines[0]));
        assert!(distinct, "all three builds produced identical kernel runs");
    }

    #[test]
    fn tables_render() {
        let rows = run_table12(&[ModelId::Mtcnn]);
        assert!(render_table12(&rows).contains("Engine3"));
        let t = run_table13(ModelId::Mtcnn);
        assert!(render_table13(&t).contains("calls"));
    }
}
