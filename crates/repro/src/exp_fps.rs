//! Table VII: classification throughput (FPS), optimized vs un-optimized.
//!
//! The un-optimized path executes the framework lowering of every layer
//! (im2col + naive FP32 GEMM per convolution, one kernel per layer, per-layer
//! synchronization and framework glue). The optimized path runs the built
//! engine. Both run at the board-maximum clock; FPS counts inference only
//! ("excluding the time to load the image from the disk", §II-E) so the
//! engine upload is excluded.

use trtsim_core::runtime::{ExecutionContext, TimingOptions};
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_gpu::timeline::GpuTimeline;
use trtsim_ir::flops::graph_costs;
use trtsim_kernels::generic::{framework_kernels, FRAMEWORK_LAYER_GLUE_US};
use trtsim_metrics::fps_from_latency_us;
use trtsim_models::ModelId;

use crate::support::{EngineFarm, TextTable};

/// One Table VII row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpsRow {
    /// Model.
    pub model: ModelId,
    /// Un-optimized FPS on NX / AGX.
    pub unoptimized: [f64; 2],
    /// TensorRT FPS on NX / AGX.
    pub tensorrt: [f64; 2],
}

impl FpsRow {
    /// Speedup factors NX / AGX.
    pub fn gain(&self) -> [f64; 2] {
        [
            self.tensorrt[0] / self.unoptimized[0],
            self.tensorrt[1] / self.unoptimized[1],
        ]
    }
}

/// The computed table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7 {
    /// One row per classification model (paper shows three; we cover five).
    pub rows: Vec<FpsRow>,
}

/// Simulated latency of the un-optimized framework path, µs.
pub fn unoptimized_latency_us(model: ModelId, device: &DeviceSpec) -> f64 {
    let graph = model.descriptor();
    let costs = graph_costs(&graph).expect("zoo models are valid");
    let shapes = graph.infer_shapes().expect("zoo models are valid");
    let mut timeline = GpuTimeline::new(device.clone());
    let stream = timeline.create_stream();
    for node in graph.nodes() {
        let kernels = framework_kernels(&node.kind, &costs[node.id], shapes[node.id]);
        if kernels.is_empty() {
            continue;
        }
        for k in kernels {
            timeline.enqueue_kernel(stream, &k);
        }
        // Frameworks synchronize and dispatch per layer.
        timeline.host_gap(stream, FRAMEWORK_LAYER_GLUE_US);
    }
    timeline.sync(stream)
}

/// Simulated latency of the optimized engine, µs (engine resident, upload
/// excluded).
pub fn optimized_latency_us(model: ModelId, platform: Platform) -> f64 {
    let engine = EngineFarm::global().zoo(model, platform, 0);
    let device = DeviceSpec::max_clock(platform);
    let ctx = ExecutionContext::new(&engine, device);
    let opts = TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(model.info().host_glue_us)
        .with_run_jitter_sd(0.0);
    ctx.measure_latency(&opts, 1, 0)[0]
}

/// Computes the table for the classification models.
pub fn run() -> Table7 {
    let rows = ModelId::classification_models()
        .into_iter()
        .map(|model| {
            let unopt = Platform::all().map(|p| {
                fps_from_latency_us(unoptimized_latency_us(model, &DeviceSpec::max_clock(p)))
            });
            let trt = Platform::all().map(|p| fps_from_latency_us(optimized_latency_us(model, p)));
            FpsRow {
                model,
                unoptimized: unopt,
                tensorrt: trt,
            }
        })
        .collect();
    Table7 { rows }
}

impl Table7 {
    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "NN Model".into(),
            "NX-Unoptimized".into(),
            "NX-TensorRT".into(),
            "AGX-Unoptimized".into(),
            "AGX-TensorRT".into(),
            "Gain NX".into(),
            "Gain AGX".into(),
        ]);
        for r in &self.rows {
            let g = r.gain();
            t.row(vec![
                r.model.to_string(),
                format!("{:.2}", r.unoptimized[0]),
                format!("{:.1}", r.tensorrt[0]),
                format!("{:.2}", r.unoptimized[1]),
                format!("{:.1}", r.tensorrt[1]),
                format!("{:.1}x", g[0]),
                format!("{:.1}x", g[1]),
            ]);
        }
        format!(
            "Table VII: FPS for TensorRT optimized and un-optimized engines\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_gain_in_paper_regime() {
        // Paper: ~27x on NX, ~23x on AGX (average over the three models).
        let table = run();
        let mean_gain_nx: f64 =
            table.rows.iter().map(|r| r.gain()[0]).sum::<f64>() / table.rows.len() as f64;
        assert!(
            (10.0..60.0).contains(&mean_gain_nx),
            "mean NX gain {mean_gain_nx:.1} outside the paper's order of magnitude"
        );
    }

    #[test]
    fn optimized_fps_ordering_matches_model_weight() {
        // VGG-16 is the heaviest classifier: lowest TensorRT FPS (paper: 49
        // vs 190/227).
        let table = run();
        let fps = |m: ModelId| {
            table
                .rows
                .iter()
                .find(|r| r.model == m)
                .map(|r| r.tensorrt[0])
                .unwrap()
        };
        assert!(fps(ModelId::Vgg16) < fps(ModelId::Alexnet));
        assert!(fps(ModelId::Vgg16) < fps(ModelId::Resnet18));
    }

    #[test]
    fn unoptimized_is_single_digit_fps() {
        // Paper: 0.66–14.2 FPS un-optimized.
        let table = run();
        for r in &table.rows {
            assert!(r.unoptimized[0] < 40.0, "{}: {}", r.model, r.unoptimized[0]);
            assert!(r.unoptimized[0] > 0.05);
        }
    }
}
