//! Tables V and VI: output-label consistency across engine builds.
//!
//! Several engines of the same network are built per platform; every engine
//! classifies the same images. Engines differ only in tactic selection, so
//! any disagreement comes from FP16 accumulation-order differences flipping
//! borderline images — Finding 2, emergent.

use trtsim_data::corruptions::{apply_corruption, Corruption, Severity};
use trtsim_data::imagenet::LabeledImage;
use trtsim_gpu::device::Platform;
use trtsim_metrics::{consistency, ConsistencyReport};
use trtsim_models::ModelId;
use trtsim_util::derive_seed;

use crate::exp_accuracy::{AccuracyConfig, AccuracySetup};
use crate::support::{TextTable, CAMPAIGN_SEED};

/// The models the paper studies in Tables V/VI.
pub fn consistency_models() -> [ModelId; 4] {
    [
        ModelId::Resnet18,
        ModelId::Vgg16,
        ModelId::InceptionV4,
        ModelId::Alexnet,
    ]
}

/// Engines per platform (the paper builds 3+3 = 6 per network).
pub const ENGINES: u64 = 3;

/// One model's full consistency study.
#[derive(Debug, Clone)]
pub struct ConsistencyStudy {
    /// The model.
    pub model: ModelId,
    /// Images compared.
    pub total: usize,
    /// Cross-platform pairs: `cross[i][j]` compares NX engine i vs AGX
    /// engine j (Table V).
    pub cross: Vec<Vec<ConsistencyReport>>,
    /// Same-platform pairs on NX and AGX: (1-2, 2-3, 1-3) (Table VI).
    pub same_nx: [ConsistencyReport; 3],
    /// AGX pairs.
    pub same_agx: [ConsistencyReport; 3],
}

/// The evaluation corpus: benign plus mildly corrupted images (mirrors the
/// paper comparing predictions over its adversarial corpus).
fn corpus(setup: &AccuracySetup, config: &AccuracyConfig) -> Vec<LabeledImage> {
    let mut images = setup.benign(config);
    for (k, corruption) in Corruption::all()
        .into_iter()
        .take(config.corruption_families)
        .enumerate()
    {
        for class in 0..config.classes {
            let base = setup.dataset.sample(class, 5000 + k);
            images.push(LabeledImage {
                image: apply_corruption(
                    &base.image,
                    corruption,
                    Severity::new(1),
                    derive_seed(CAMPAIGN_SEED, "consistency", (k * 1000 + class) as u64),
                ),
                label: class,
            });
        }
    }
    images
}

/// Runs the study for one model.
pub fn run(model: ModelId, config: &AccuracyConfig) -> ConsistencyStudy {
    let setup = AccuracySetup::new(model, config);
    let images = corpus(&setup, config);
    let predict = |platform: Platform, index: u64| -> Vec<usize> {
        let engine = setup.engine(platform, index);
        setup.engine_predictions(&engine, &images)
    };
    let nx: Vec<Vec<usize>> = (0..ENGINES).map(|i| predict(Platform::Nx, i)).collect();
    let agx: Vec<Vec<usize>> = (0..ENGINES).map(|i| predict(Platform::Agx, i)).collect();

    let cross = nx
        .iter()
        .map(|a| agx.iter().map(|b| consistency(a, b)).collect())
        .collect();
    let pairs = |v: &[Vec<usize>]| -> [ConsistencyReport; 3] {
        [
            consistency(&v[0], &v[1]),
            consistency(&v[1], &v[2]),
            consistency(&v[0], &v[2]),
        ]
    };
    ConsistencyStudy {
        model,
        total: images.len(),
        cross,
        same_nx: pairs(&nx),
        same_agx: pairs(&agx),
    }
}

/// Renders Table V (cross-platform pairs) for several studies.
pub fn render_table5(studies: &[ConsistencyStudy]) -> String {
    let mut header = vec!["NN Model".to_string()];
    for i in 1..=ENGINES {
        for j in 1..=ENGINES {
            header.push(format!("NX{i}-AGX{j}"));
        }
    }
    header.push("(scaled to 60k)".into());
    let mut t = TextTable::new(header);
    for s in studies {
        let mut row = vec![s.model.to_string()];
        let mut scaled_total = 0.0;
        for i in 0..ENGINES as usize {
            for j in 0..ENGINES as usize {
                row.push(s.cross[i][j].mismatches.to_string());
                scaled_total += s.cross[i][j].scaled_to(60_000);
            }
        }
        row.push(format!("avg {:.0}", scaled_total / 9.0));
        t.row(row);
    }
    format!(
        "Table V: differing predictions across cross-platform engine pairs (out of {} images)\n{}",
        studies.first().map(|s| s.total).unwrap_or(0),
        t.render()
    )
}

/// Renders Table VI (same-platform pairs).
pub fn render_table6(studies: &[ConsistencyStudy]) -> String {
    let mut t = TextTable::new(vec![
        "Platform".into(),
        "NN Model".into(),
        "Engines 1-2".into(),
        "Engines 2-3".into(),
        "Engines 1-3".into(),
    ]);
    for s in studies {
        t.row(vec![
            "NX".into(),
            s.model.to_string(),
            s.same_nx[0].mismatches.to_string(),
            s.same_nx[1].mismatches.to_string(),
            s.same_nx[2].mismatches.to_string(),
        ]);
        t.row(vec![
            "AGX".into(),
            s.model.to_string(),
            s.same_agx[0].mismatches.to_string(),
            s.same_agx[1].mismatches.to_string(),
            s.same_agx[2].mismatches.to_string(),
        ]);
    }
    format!(
        "Table VI: differing predictions across same-platform engine pairs\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_shapes_are_complete() {
        let s = run(ModelId::Alexnet, &AccuracyConfig::quick());
        assert_eq!(s.cross.len(), 3);
        assert_eq!(s.cross[0].len(), 3);
        assert!(s.total > 0);
        for row in &s.cross {
            for r in row {
                assert_eq!(r.total, s.total);
            }
        }
    }

    #[test]
    fn mismatch_rates_are_small() {
        // The paper's Tables V/VI: 0.1-0.8% of predictions differ — never
        // wholesale disagreement.
        let s = run(ModelId::Resnet18, &AccuracyConfig::quick());
        for row in &s.cross {
            for r in row {
                assert!(
                    r.mismatch_percent() < 12.0,
                    "cross-engine mismatch rate {:.1}% is not 'minimal'",
                    r.mismatch_percent()
                );
            }
        }
    }

    #[test]
    fn identical_build_would_be_identical() {
        // Two predictions with the same engine are bit-equal (control).
        let config = AccuracyConfig::quick();
        let setup = AccuracySetup::new(ModelId::Alexnet, &config);
        let images = setup.benign(&config);
        let e = setup.engine(Platform::Nx, 0);
        let a = setup.engine_predictions(&e, &images);
        let b = setup.engine_predictions(&e, &images);
        assert_eq!(consistency(&a, &b).mismatches, 0);
    }

    #[test]
    fn renders_both_tables() {
        let s = run(ModelId::Alexnet, &AccuracyConfig::quick());
        let studies = vec![s];
        assert!(render_table5(&studies).contains("NX1-AGX1"));
        assert!(render_table6(&studies).contains("Engines 1-2"));
    }
}
