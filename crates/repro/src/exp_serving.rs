//! Serving extension (§VI-A deployment pattern): dynamic-batching sweep.
//!
//! Not a paper table — the paper serves one frame per thread per call — but
//! the natural production follow-up to Figures 3/4: hold the worker count
//! fixed and sweep the dynamic batcher's maximum batch size, reporting
//! aggregate FPS, GR3D utilization, and the per-request latency tail. Launch
//! overhead and host glue amortize across a batch, so FPS climbs with batch
//! size — and since the sweep submits its whole backlog up front, queue wait
//! dominates latency and the tail shrinks along with it.

use trtsim_core::runtime::TimingOptions;
use trtsim_core::serving::{InferenceServer, ServerConfig};
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_metrics::LatencyPercentiles;
use trtsim_models::ModelId;

use crate::support::{EngineFarm, TextTable};

/// One batch-size setting's serving outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingPoint {
    /// Dynamic batcher's maximum batch size.
    pub max_batch_size: usize,
    /// Batched enqueues issued.
    pub batches: u64,
    /// Aggregate throughput, frames per simulated second.
    pub fps: f64,
    /// Mean GR3D utilization, percent.
    pub gr3d_percent: f64,
    /// Per-request latency tail.
    pub latency: LatencyPercentiles,
}

/// The sweep for one (model, platform).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingSweep {
    /// Model under test.
    pub model: ModelId,
    /// Platform.
    pub platform: Platform,
    /// Worker (stream) count, fixed across the sweep.
    pub workers: usize,
    /// Frames served per point.
    pub frames: u64,
    /// One point per batch size, ascending.
    pub points: Vec<ServingPoint>,
}

impl ServingSweep {
    /// FPS gain of the largest batch over unbatched serving.
    pub fn batching_speedup(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(first), Some(last)) if first.fps > 0.0 => last.fps / first.fps,
            _ => 0.0,
        }
    }
}

/// Sweeps batch sizes 1, 2, 4, 8 at the board-maximum clock with 4 workers
/// and full-batch (deterministic) coalescing.
pub fn run(model: ModelId, platform: Platform) -> ServingSweep {
    let workers = 4usize;
    let frames = 256u64;
    let engine = EngineFarm::global().zoo(model, platform, 0);
    let device = DeviceSpec::max_clock(platform);
    let timing = TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(model.info().host_glue_us)
        .with_run_jitter_sd(0.0);
    let points = [1usize, 2, 4, 8]
        .into_iter()
        .map(|max_batch_size| {
            let server = InferenceServer::start(
                &engine,
                &device,
                ServerConfig::default()
                    .with_workers(workers)
                    .with_queue_capacity(frames as usize)
                    .with_max_batch_size(max_batch_size)
                    .with_batch_timeout_us(f64::INFINITY)
                    .with_timing(timing),
            )
            .expect("valid config");
            for frame in 0..frames {
                server.submit(frame).expect("server accepting");
            }
            let stats = server.drain();
            ServingPoint {
                max_batch_size,
                batches: stats.batches,
                fps: stats.aggregate_fps,
                gr3d_percent: stats.gr3d_percent,
                latency: stats.latency,
            }
        })
        .collect();
    ServingSweep {
        model,
        platform,
        workers,
        frames,
        points,
    }
}

/// Renders the sweep as a text table.
pub fn render(sweep: &ServingSweep) -> String {
    let mut t = TextTable::new(vec![
        "batch".into(),
        "batches".into(),
        "FPS".into(),
        "GR3D (%)".into(),
        "p50 (ms)".into(),
        "p99 (ms)".into(),
    ]);
    for p in &sweep.points {
        t.row(vec![
            p.max_batch_size.to_string(),
            p.batches.to_string(),
            format!("{:.1}", p.fps),
            format!("{:.1}", p.gr3d_percent),
            format!("{:.2}", p.latency.p50_us / 1000.0),
            format!("{:.2}", p.latency.p99_us / 1000.0),
        ]);
    }
    format!(
        "{} on {} — {} workers, {} frames: batching speedup {:.2}x\n{}",
        sweep.model,
        sweep.platform,
        sweep.workers,
        sweep.frames,
        sweep.batching_speedup(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_strictly_improves_fps() {
        let sweep = run(ModelId::TinyYolov3, Platform::Nx);
        assert_eq!(sweep.points.len(), 4);
        let fps: Vec<f64> = sweep.points.iter().map(|p| p.fps).collect();
        assert!(
            fps.windows(2).all(|w| w[1] > w[0]),
            "FPS not increasing with batch size: {fps:?}"
        );
        assert!(sweep.batching_speedup() > 1.0);
    }

    #[test]
    fn every_point_serves_all_frames() {
        let sweep = run(ModelId::Googlenet, Platform::Agx);
        for p in &sweep.points {
            assert_eq!(
                p.latency.count as u64, sweep.frames,
                "batch {}",
                p.max_batch_size
            );
            assert!(p.gr3d_percent > 0.0 && p.gr3d_percent <= 100.0);
            assert!(p.latency.p99_us >= p.latency.p50_us);
        }
    }

    #[test]
    fn renders_table() {
        let sweep = run(ModelId::TinyYolov3, Platform::Nx);
        let s = render(&sweep);
        assert!(s.contains("batch") && s.contains("p99"));
        assert_eq!(s.lines().count(), sweep.points.len() + 3);
    }
}
