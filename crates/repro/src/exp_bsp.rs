//! Tables XVII and XVIII: BSP performance-model prediction under engine
//! non-determinism.
//!
//! Three engines of the same model are built on NX; λs are calibrated per
//! engine on NX and used to predict AGX execution. The paper's point — the
//! prediction error swings across builds because each engine maps to
//! different kernels — is reproduced and quantified.

use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_models::ModelId;
use trtsim_perfmodel::PredictionOutcome;

use crate::support::{EngineFarm, TextTable};

/// One engine's prediction outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct BspRow {
    /// Engine build index.
    pub engine: u64,
    /// Distinct kernel symbols calibrated.
    pub lambda_count: usize,
    /// Predicted AGX time, ms.
    pub predicted_ms: f64,
    /// Simulated AGX time, ms.
    pub actual_ms: f64,
    /// Absolute error, percent.
    pub error_percent: f64,
}

/// The experiment for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct BspExperiment {
    /// Model studied (Table XVII: Inception-v4; Table XVIII: MobileNetV1).
    pub model: ModelId,
    /// One row per engine build.
    pub rows: Vec<BspRow>,
}

impl BspExperiment {
    /// Spread of prediction error across builds, percentage points.
    pub fn error_spread(&self) -> f64 {
        let errs: Vec<f64> = self.rows.iter().map(|r| r.error_percent).collect();
        let min = errs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = errs.iter().cloned().fold(0.0, f64::max);
        max - min
    }
}

/// Runs the experiment: `engines` NX builds of `model`, predicted onto AGX.
pub fn run(model: ModelId, engines: u64) -> BspExperiment {
    let nx = DeviceSpec::pinned_clock(Platform::Nx);
    let agx = DeviceSpec::pinned_clock(Platform::Agx);
    let rows = (0..engines)
        .map(|i| {
            let engine = EngineFarm::global().zoo(model, Platform::Nx, i);
            let outcome = PredictionOutcome::evaluate(&engine, &nx, &agx, i ^ 0xb5b);
            BspRow {
                engine: i + 1,
                lambda_count: outcome.lambda_count,
                predicted_ms: outcome.predicted_us / 1000.0,
                actual_ms: outcome.actual_us / 1000.0,
                error_percent: outcome.error_percent(),
            }
        })
        .collect();
    BspExperiment { model, rows }
}

/// Renders the table.
pub fn render(exp: &BspExperiment) -> String {
    let mut t = TextTable::new(vec![
        "Engine".into(),
        "# λ kernels".into(),
        "Predicted AGX (ms)".into(),
        "Actual AGX (ms)".into(),
        "Error (%)".into(),
    ]);
    for r in &exp.rows {
        t.row(vec![
            r.engine.to_string(),
            r.lambda_count.to_string(),
            format!("{:.2}", r.predicted_ms),
            format!("{:.2}", r.actual_ms),
            format!("{:.1}", r.error_percent),
        ]);
    }
    format!(
        "BSP cross-platform prediction for {} (λ calibrated per engine on NX)\n{}\nerror spread across engines: {:.1} percentage points\n",
        exp.model,
        t.render(),
        exp.error_spread()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inception_prediction_error_varies_across_engines() {
        // Paper: "a significant change of around 2-13% in the prediction
        // error across the three engines".
        let exp = run(ModelId::InceptionV4, 3);
        assert_eq!(exp.rows.len(), 3);
        assert!(
            exp.error_spread() > 0.2,
            "error spread {:.2} — engines predicted identically",
            exp.error_spread()
        );
    }

    #[test]
    fn predictions_are_right_order_of_magnitude() {
        let exp = run(ModelId::Mobilenetv1, 2);
        for r in &exp.rows {
            assert!(r.predicted_ms > 0.0);
            assert!(
                r.error_percent < 80.0,
                "engine {}: error {:.1}%",
                r.engine,
                r.error_percent
            );
        }
    }

    #[test]
    fn renders() {
        let exp = run(ModelId::Mobilenetv1, 2);
        let s = render(&exp);
        assert!(s.contains("Error (%)"));
        assert!(s.contains("error spread"));
    }
}
