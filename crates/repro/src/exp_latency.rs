//! Tables VIII and IX: the compile-platform × run-platform latency matrix
//! and its anomalies.

use trtsim_core::runtime::ExecutionContext;
use trtsim_core::Engine;
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_metrics::LatencyCell;
use trtsim_models::ModelId;
use trtsim_util::derive_seed;

use crate::support::{table8_options, table9_options, EngineFarm, TextTable, CAMPAIGN_SEED, RUNS};

/// The four measurement cases of Table VIII, in column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Case {
    /// Compiled on NX, run on NX.
    CNxRNx,
    /// Compiled on NX, run on AGX.
    CNxRAgx,
    /// Compiled on AGX, run on AGX.
    CAgxRAgx,
    /// Compiled on AGX, run on NX.
    CAgxRNx,
}

impl Case {
    /// All four, in the paper's column order.
    pub fn all() -> [Case; 4] {
        [Case::CNxRNx, Case::CNxRAgx, Case::CAgxRAgx, Case::CAgxRNx]
    }

    /// Compile and run platforms.
    pub fn platforms(self) -> (Platform, Platform) {
        match self {
            Case::CNxRNx => (Platform::Nx, Platform::Nx),
            Case::CNxRAgx => (Platform::Nx, Platform::Agx),
            Case::CAgxRAgx => (Platform::Agx, Platform::Agx),
            Case::CAgxRNx => (Platform::Agx, Platform::Nx),
        }
    }

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Case::CNxRNx => "cNX_rNX",
            Case::CNxRAgx => "cNX_rAGX",
            Case::CAgxRAgx => "cAGX_rAGX",
            Case::CAgxRNx => "cAGX_rNX",
        }
    }
}

/// The paper's three anomaly categories (¶, ·, ¸ in §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anomaly {
    /// Platform-specific engines: cAGX_rAGX slower than cNX_rNX.
    Case1,
    /// The same NX engine runs slower on AGX: cNX_rAGX > cNX_rNX.
    Case2,
    /// The same AGX engine runs faster on NX: cAGX_rNX < cAGX_rAGX.
    Case3,
}

impl Anomaly {
    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            Anomaly::Case1 => "case 1",
            Anomaly::Case2 => "case 2",
            Anomaly::Case3 => "case 3",
        }
    }
}

/// One model's Table VIII row.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// Model.
    pub model: ModelId,
    /// Mean(σ) latency per case, Table VIII column order.
    pub cells: [LatencyCell; 4],
    /// Detected anomalies.
    pub anomalies: Vec<Anomaly>,
}

/// The computed latency matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Table8 {
    /// One row per zoo model.
    pub rows: Vec<LatencyRow>,
}

/// Measures one cell: run `engine` on `run_platform` for [`RUNS`] runs.
pub fn measure_cell(
    engine: &Engine,
    run_platform: Platform,
    opts: &trtsim_core::runtime::TimingOptions,
    seed: u64,
) -> LatencyCell {
    let ctx = ExecutionContext::new(engine, DeviceSpec::pinned_clock(run_platform));
    LatencyCell::from_runs_us(&ctx.measure_latency(opts, RUNS, seed))
}

fn detect_anomalies(cells: &[LatencyCell; 4]) -> Vec<Anomaly> {
    let mut out = Vec::new();
    // Indices follow Case::all(): 0 cNX_rNX, 1 cNX_rAGX, 2 cAGX_rAGX, 3 cAGX_rNX.
    if cells[2].mean_ms > cells[0].mean_ms {
        out.push(Anomaly::Case1);
    }
    if cells[1].mean_ms > cells[0].mean_ms {
        out.push(Anomaly::Case2);
    }
    if cells[3].mean_ms < cells[2].mean_ms {
        out.push(Anomaly::Case3);
    }
    out
}

/// Computes Table VIII (all 13 models, nvprof attached).
pub fn run() -> Table8 {
    run_for(ModelId::all().to_vec(), true)
}

/// Table VIII conditions on a caller-chosen subset of models.
pub fn run_subset(models: &[ModelId]) -> Table8 {
    run_for(models.to_vec(), true)
}

/// Computes Table IX conditions (no nvprof) for the paper's two
/// representative models.
pub fn run_table9() -> Table8 {
    run_for(vec![ModelId::InceptionV4, ModelId::Pednet], false)
}

fn run_for(models: Vec<ModelId>, profiled: bool) -> Table8 {
    let farm = EngineFarm::global();
    // Build every missing engine of the matrix concurrently up front.
    let wanted: Vec<_> = models
        .iter()
        .flat_map(|&m| [(m, Platform::Nx, 0), (m, Platform::Agx, 0)])
        .collect();
    farm.prefetch_zoo(&wanted);
    let rows = models
        .into_iter()
        .map(|model| {
            let nx_engine = farm.zoo(model, Platform::Nx, 0);
            let agx_engine = farm.zoo(model, Platform::Agx, 0);
            let opts = if profiled {
                table8_options(model)
            } else {
                table9_options(model)
            };
            let cells: Vec<LatencyCell> = Case::all()
                .into_iter()
                .map(|case| {
                    let (compile, run) = case.platforms();
                    let engine = if compile == Platform::Nx {
                        &nx_engine
                    } else {
                        &agx_engine
                    };
                    let seed = derive_seed(
                        CAMPAIGN_SEED,
                        "latency-run",
                        (model.info().name.len() as u64) << 8 | case as u64,
                    );
                    measure_cell(engine, run, &opts, seed)
                })
                .collect();
            let cells: [LatencyCell; 4] = cells.try_into().expect("four cases");
            LatencyRow {
                model,
                anomalies: detect_anomalies(&cells),
                cells,
            }
        })
        .collect();
    Table8 { rows }
}

impl Table8 {
    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(
            std::iter::once("NN Model".to_string())
                .chain(Case::all().iter().map(|c| c.label().to_string()))
                .chain(["Detected Anomalies".to_string()])
                .collect(),
        );
        for r in &self.rows {
            let anomalies = if r.anomalies.is_empty() {
                "none".to_string()
            } else {
                r.anomalies
                    .iter()
                    .map(|a| a.label())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            t.row(
                std::iter::once(r.model.to_string())
                    .chain(r.cells.iter().map(|c| c.to_string()))
                    .chain([anomalies])
                    .collect(),
            );
        }
        t.render()
    }

    /// Number of rows with at least one anomaly.
    pub fn anomalous_rows(&self) -> usize {
        self.rows.iter().filter(|r| !r.anomalies.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table() -> Table8 {
        run_for(
            vec![ModelId::Resnet18, ModelId::Pednet, ModelId::Mtcnn],
            true,
        )
    }

    #[test]
    fn cells_are_positive_with_spread() {
        let t = small_table();
        for r in &t.rows {
            for c in &r.cells {
                assert!(c.mean_ms > 0.0);
                assert_eq!(c.runs, RUNS);
            }
        }
    }

    #[test]
    fn nvprof_inflates_latency() {
        let with = run_for(vec![ModelId::Pednet], true);
        let without = run_for(vec![ModelId::Pednet], false);
        assert!(
            with.rows[0].cells[0].mean_ms > without.rows[0].cells[0].mean_ms,
            "profiled {} !> unprofiled {}",
            with.rows[0].cells[0].mean_ms,
            without.rows[0].cells[0].mean_ms
        );
    }

    #[test]
    fn anomaly_detector_is_sound() {
        let t = small_table();
        for r in &t.rows {
            if r.anomalies.contains(&Anomaly::Case2) {
                assert!(r.cells[1].mean_ms > r.cells[0].mean_ms);
            }
            if r.anomalies.contains(&Anomaly::Case3) {
                assert!(r.cells[3].mean_ms < r.cells[2].mean_ms);
            }
        }
    }

    #[test]
    fn renders_anomaly_column() {
        let t = small_table();
        let s = t.render();
        assert!(s.contains("Detected Anomalies"));
        assert!(s.contains("cNX_rNX") && s.contains("cAGX_rNX"));
    }
}
