//! Figures 3 and 4: multi-stream concurrency — aggregate FPS and GR3D
//! utilization vs thread count, and the supported thread bound (Eq. 1).

use trtsim_core::runtime::ExecutionContext;
use trtsim_gpu::contention::{max_threads, sweep, ConcurrencyPoint, ThreadBound};
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_models::ModelId;

use crate::support::{EngineFarm, TextTable};

/// One platform's sweep for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrencyFigure {
    /// Model (Figure 3: Tiny-YOLOv3; Figure 4: GoogLeNet).
    pub model: ModelId,
    /// Platform.
    pub platform: Platform,
    /// The FPS/utilization series, threads 1..=max.
    pub points: Vec<ConcurrencyPoint>,
    /// What bounded the thread count.
    pub bound: ThreadBound,
}

impl ConcurrencyFigure {
    /// Maximum supported threads.
    pub fn max_threads(&self) -> u32 {
        self.points.last().map(|p| p.threads).unwrap_or(0)
    }

    /// Utilization at saturation, percent.
    pub fn saturation_utilization_percent(&self) -> f64 {
        self.points
            .last()
            .map(|p| p.utilization * 100.0)
            .unwrap_or(0.0)
    }
}

/// Computes the sweep for one (model, platform) at the board-maximum clock
/// ("we obtain these statistics on the maximum GPU frequency", §IV-B).
pub fn run(model: ModelId, platform: Platform) -> ConcurrencyFigure {
    let engine = EngineFarm::global().zoo(model, platform, 0);
    let device = DeviceSpec::max_clock(platform);
    let ctx = ExecutionContext::new(&engine, device.clone());
    let profile = ctx.profile(model.info().host_glue_us);
    let (points, bound) = sweep(&profile, &device);
    let (_, bound_check) = max_threads(&profile, &device);
    debug_assert_eq!(bound, bound_check);
    ConcurrencyFigure {
        model,
        platform,
        points,
        bound,
    }
}

/// Renders one figure's series as a text table.
pub fn render(figure: &ConcurrencyFigure) -> String {
    let mut t = TextTable::new(vec!["threads".into(), "FPS".into(), "GPU util (%)".into()]);
    for p in &figure.points {
        t.row(vec![
            p.threads.to_string(),
            format!("{:.1}", p.fps),
            format!("{:.1}", p.utilization * 100.0),
        ]);
    }
    format!(
        "{} on {} — saturates at {} threads ({:?}-bound), util {:.1}%\n{}",
        figure.model,
        figure.platform,
        figure.max_threads(),
        figure.bound,
        figure.saturation_utilization_percent(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_yolo_supports_more_threads_than_googlenet() {
        // Paper: 28 vs 16 on NX; 36 vs 24 on AGX.
        for platform in Platform::all() {
            let yolo = run(ModelId::TinyYolov3, platform);
            let goog = run(ModelId::Googlenet, platform);
            assert!(
                yolo.max_threads() > goog.max_threads(),
                "{platform}: {} !> {}",
                yolo.max_threads(),
                goog.max_threads()
            );
        }
    }

    #[test]
    fn agx_supports_more_threads_than_nx() {
        for model in [ModelId::TinyYolov3, ModelId::Googlenet] {
            let nx = run(model, Platform::Nx);
            let agx = run(model, Platform::Agx);
            assert!(
                agx.max_threads() > nx.max_threads(),
                "{model}: {} !> {}",
                agx.max_threads(),
                nx.max_threads()
            );
        }
    }

    #[test]
    fn utilization_saturates_around_the_paper_band() {
        // Paper: 82-86% at saturation.
        for (model, platform) in [
            (ModelId::TinyYolov3, Platform::Nx),
            (ModelId::TinyYolov3, Platform::Agx),
        ] {
            let fig = run(model, platform);
            let sat = fig.saturation_utilization_percent();
            assert!(
                (55.0..=90.0).contains(&sat),
                "{model} {platform}: saturation {sat:.1}%"
            );
        }
    }

    #[test]
    fn fps_and_util_rise_with_threads() {
        let fig = run(ModelId::TinyYolov3, Platform::Nx);
        assert!(
            fig.points.len() >= 4,
            "too few points: {}",
            fig.points.len()
        );
        let first = &fig.points[0];
        let last = fig.points.last().unwrap();
        assert!(last.fps >= first.fps * 0.99);
        assert!(last.utilization > first.utilization);
    }

    #[test]
    fn renders_series() {
        let fig = run(ModelId::Googlenet, Platform::Nx);
        let s = render(&fig);
        assert!(s.contains("threads") && s.contains("GPU util"));
        assert_eq!(s.lines().count(), fig.points.len() + 3);
    }
}
