//! Runs every table/figure harness in order, printing all results.
//! `cargo run --release -p trtsim-repro --bin all_experiments`
use trtsim_gpu::device::Platform;
use trtsim_models::ModelId;
use trtsim_repro::*;

fn main() {
    let t0 = std::time::Instant::now();

    // Warm the engine farm up front: every zoo engine the harnesses below
    // request, built concurrently with a shared timing cache. Individual
    // harnesses then get instant hand-outs instead of serial rebuilds.
    let farm = support::EngineFarm::global();
    let mut wanted: Vec<(ModelId, Platform, u64)> = Vec::new();
    for model in ModelId::all() {
        for platform in Platform::all() {
            wanted.push((model, platform, 0));
        }
    }
    for i in 1..exp_variability::ENGINES_PER_PLATFORM {
        wanted.push((ModelId::InceptionV4, Platform::Agx, i));
        wanted.push((ModelId::Resnet18, Platform::Agx, i));
    }
    farm.prefetch_zoo(&wanted);
    eprintln!(
        "engine farm warmed in {:.1}s ({} engines, timing cache: {})",
        t0.elapsed().as_secs_f32(),
        farm.len(),
        farm.stats().timing,
    );

    println!("{}", exp_platforms::run());
    println!("{}", exp_sizes::run().render());

    let acc_config = exp_accuracy::AccuracyConfig::default();
    println!(
        "{}",
        exp_accuracy::render_table3(&exp_accuracy::run_table3(&acc_config))
    );
    println!(
        "{}",
        exp_accuracy::render_table4(&exp_accuracy::run_table4(&acc_config))
    );

    let studies: Vec<_> = exp_consistency::consistency_models()
        .into_iter()
        .map(|m| exp_consistency::run(m, &acc_config))
        .collect();
    println!("{}", exp_consistency::render_table5(&studies));
    println!("{}", exp_consistency::render_table6(&studies));

    println!("{}", exp_fps::run().render());

    for platform in Platform::all() {
        println!(
            "{}",
            exp_concurrency::render(&exp_concurrency::run(ModelId::TinyYolov3, platform))
        );
    }
    for platform in Platform::all() {
        println!(
            "{}",
            exp_concurrency::render(&exp_concurrency::run(ModelId::Googlenet, platform))
        );
    }

    println!(
        "Table VIII: inference latency with nvprof (pinned clocks)\n{}",
        exp_latency::run().render()
    );
    println!(
        "Table IX: inference latency without nvprof\n{}",
        exp_latency::run_table9().render()
    );
    println!("{}", exp_memcpy::render_table10(&exp_memcpy::run_table10()));
    println!(
        "{}",
        exp_memcpy::render_table11(&exp_memcpy::run_table11(&[
            ModelId::Pednet,
            ModelId::Facenet,
            ModelId::Mobilenetv1,
        ]))
    );
    println!(
        "{}",
        exp_variability::render_table12(&exp_variability::run_table12(&ModelId::all()))
    );
    println!(
        "{}",
        exp_variability::render_table13(&exp_variability::run_table13(ModelId::InceptionV4))
    );
    println!("{}", exp_summary::render(&exp_summary::run()));
    println!(
        "{}",
        exp_bsp::render(&exp_bsp::run(ModelId::InceptionV4, 3))
    );
    println!(
        "{}",
        exp_bsp::render(&exp_bsp::run(ModelId::Mobilenetv1, 3))
    );
    for platform in Platform::all() {
        println!(
            "{}",
            exp_serving::render(&exp_serving::run(ModelId::TinyYolov3, platform))
        );
    }
    let stats = farm.stats();
    eprintln!(
        "all experiments completed in {:.1}s — farm: {} engines from {} requests ({} builds), timing cache: {}",
        t0.elapsed().as_secs_f32(),
        farm.len(),
        stats.requests,
        stats.builds,
        stats.timing,
    );
}
