//! Regenerates the paper's Table V (cross-platform output consistency).
use trtsim_repro::exp_accuracy::AccuracyConfig;
use trtsim_repro::exp_consistency::{consistency_models, render_table5, run};
fn main() {
    let config = AccuracyConfig::default();
    let studies: Vec<_> = consistency_models()
        .into_iter()
        .map(|m| run(m, &config))
        .collect();
    println!("{}", render_table5(&studies));
}
