//! Regenerates the paper's Table VII (FPS, optimized vs un-optimized).
fn main() {
    println!("{}", trtsim_repro::exp_fps::run().render());
}
