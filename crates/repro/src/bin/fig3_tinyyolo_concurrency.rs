//! Regenerates the paper's Figure 3 (Tiny-YOLOv3 concurrency sweep).
use trtsim_gpu::device::Platform;
use trtsim_models::ModelId;
use trtsim_repro::exp_concurrency::{render, run};
fn main() {
    for platform in Platform::all() {
        println!("{}", render(&run(ModelId::TinyYolov3, platform)));
    }
}
