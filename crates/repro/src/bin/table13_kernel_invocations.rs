//! Regenerates the paper's Table XIII (kernel invocation counts per build).
use trtsim_models::ModelId;
use trtsim_repro::exp_variability::{render_table13, run_table13};
fn main() {
    println!("{}", render_table13(&run_table13(ModelId::InceptionV4)));
}
