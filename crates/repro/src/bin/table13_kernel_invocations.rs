//! Regenerates the paper's Table XIII (kernel invocation counts per build)
//! and drops a side-by-side chrome://tracing view of the three builds.
use trtsim_models::ModelId;
use trtsim_repro::exp_variability::{render_table13, run_table13, write_variability_trace};
fn main() {
    println!("{}", render_table13(&run_table13(ModelId::InceptionV4)));
    let path = "table13_trace.json";
    match write_variability_trace(path, ModelId::InceptionV4, 4) {
        Ok(()) => println!("trace written to {path} (load in chrome://tracing)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
