//! Regenerates the paper's Table XVII (BSP prediction, Inception-v4).
use trtsim_models::ModelId;
use trtsim_repro::exp_bsp::{render, run};
fn main() {
    println!("{}", render(&run(ModelId::InceptionV4, 3)));
}
