//! Regenerates the paper's Table III (top-1 error, benign data).
use trtsim_repro::exp_accuracy::{render_table3, run_table3, AccuracyConfig};
fn main() {
    println!("{}", render_table3(&run_table3(&AccuracyConfig::default())));
}
