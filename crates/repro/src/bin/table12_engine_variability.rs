//! Regenerates the paper's Table XII (latency across engine builds, AGX).
use trtsim_models::ModelId;
use trtsim_repro::exp_variability::{render_table12, run_table12};
fn main() {
    println!("{}", render_table12(&run_table12(&ModelId::all())));
}
