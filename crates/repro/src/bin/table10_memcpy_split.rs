//! Regenerates the paper's Table X (memcpy included/excluded) and drops the
//! chrome://tracing view of the anomaly next to it.
use trtsim_gpu::device::Platform;
use trtsim_models::ModelId;
use trtsim_repro::exp_memcpy::{render_table10, run_table10, write_memcpy_trace};
fn main() {
    println!("{}", render_table10(&run_table10()));
    let path = "table10_trace.json";
    match write_memcpy_trace(path, ModelId::Resnet18, Platform::Agx, 16) {
        Ok(()) => println!("trace written to {path} (load in chrome://tracing)"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
