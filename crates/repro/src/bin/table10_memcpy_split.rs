//! Regenerates the paper's Table X (memcpy included/excluded).
use trtsim_repro::exp_memcpy::{render_table10, run_table10};
fn main() {
    println!("{}", render_table10(&run_table10()));
}
