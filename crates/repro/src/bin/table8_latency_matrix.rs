//! Regenerates the paper's Table VIII (latency matrix with anomalies).
fn main() {
    let t = trtsim_repro::exp_latency::run();
    println!(
        "Table VIII: inference latency with nvprof (pinned clocks)\n{}",
        t.render()
    );
}
