//! Regenerates the paper's Tables XIV-XVI (findings summary) from data.
use trtsim_repro::exp_summary::{render, run};
fn main() {
    println!("{}", render(&run()));
}
