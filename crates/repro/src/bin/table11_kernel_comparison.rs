//! Regenerates the paper's Table XI (kernels slower on AGX).
use trtsim_models::ModelId;
use trtsim_repro::exp_memcpy::{render_table11, run_table11};
fn main() {
    let rows = run_table11(&[ModelId::Pednet, ModelId::Facenet, ModelId::Mobilenetv1]);
    println!("{}", render_table11(&rows));
}
