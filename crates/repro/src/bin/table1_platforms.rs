//! Regenerates the paper's Table I (evaluation platforms).
fn main() {
    println!("{}", trtsim_repro::exp_platforms::run());
}
