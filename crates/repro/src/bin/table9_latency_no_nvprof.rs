//! Regenerates the paper's Table IX (latency without nvprof).
fn main() {
    let t = trtsim_repro::exp_latency::run_table9();
    println!("Table IX: inference latency without nvprof\n{}", t.render());
}
