//! Regenerates the paper's Table XVIII (BSP prediction, MobileNetV1).
use trtsim_models::ModelId;
use trtsim_repro::exp_bsp::{render, run};
fn main() {
    println!("{}", render(&run(ModelId::Mobilenetv1, 3)));
}
