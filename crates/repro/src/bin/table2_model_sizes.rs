//! Regenerates the paper's Table II (model and engine sizes).
fn main() {
    println!("{}", trtsim_repro::exp_sizes::run().render());
}
