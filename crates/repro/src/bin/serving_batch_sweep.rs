//! Serving extension: dynamic-batching sweep on both platforms.
use trtsim_gpu::device::Platform;
use trtsim_models::ModelId;
use trtsim_repro::exp_serving::{render, run};
fn main() {
    for platform in Platform::all() {
        println!("{}", render(&run(ModelId::TinyYolov3, platform)));
    }
}
