//! Serving extension: dynamic-batching sweep on both platforms.
//!
//! Besides the text tables, dumps the process telemetry registry (serving
//! counters, per-model latency histograms, build-cache and farm activity)
//! as JSON: `--telemetry PATH` moves it, default `TELEMETRY_serving.json`.
use trtsim_gpu::device::Platform;
use trtsim_metrics::Registry;
use trtsim_models::ModelId;
use trtsim_repro::exp_serving::{render, run};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let telemetry_path = args
        .iter()
        .position(|a| a == "--telemetry")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "TELEMETRY_serving.json".to_string());
    for platform in Platform::all() {
        println!("{}", render(&run(ModelId::TinyYolov3, platform)));
    }
    Registry::global()
        .write_json(&telemetry_path)
        .expect("write telemetry snapshot");
    println!("telemetry snapshot -> {telemetry_path}");
}
