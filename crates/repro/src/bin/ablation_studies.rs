//! Runs the ablation studies (DESIGN.md extensions): pass contributions,
//! precision policies, and the avgTiming non-determinism knob.
use trtsim_models::ModelId;
use trtsim_repro::exp_ablation::*;

fn main() {
    for model in [ModelId::Googlenet, ModelId::TinyYolov3] {
        println!("{}", render_pass_ablation(model, &run_pass_ablation(model)));
    }
    for model in [ModelId::Resnet18, ModelId::Vgg16] {
        println!(
            "{}",
            render_precision_ablation(model, &run_precision_ablation(model))
        );
    }
    println!(
        "{}",
        render_avgtiming(
            ModelId::InceptionV4,
            &run_avgtiming_sweep(ModelId::InceptionV4, 8)
        )
    );
    let config = trtsim_repro::exp_accuracy::AccuracyConfig::quick();
    let int8_rows: Vec<_> = [ModelId::Alexnet, ModelId::Vgg16]
        .into_iter()
        .map(|m| run_int8_accuracy(m, &config))
        .collect();
    println!("{}", render_int8(&int8_rows));
}
