//! Regenerates the paper's Table IV (top-1 error, adversarial data).
use trtsim_repro::exp_accuracy::{render_table4, run_table4, AccuracyConfig};
fn main() {
    println!("{}", render_table4(&run_table4(&AccuracyConfig::default())));
}
