//! Tables III and IV: top-1 error of un-optimized vs TensorRT engines on
//! benign and adversarial data.
//!
//! Numeric-scale models classify a synthetic class-prototype dataset whose
//! signal-to-noise ratio is dialed per model so the *absolute* error levels
//! land in the paper's regime; the *deltas* — TensorRT at or slightly below
//! the un-optimized error, severity 5 far above severity 1 — are emergent
//! (weight clustering denoises the over-fit weights; corruption maths follow
//! ImageNet-C).

use std::sync::Arc;

use trtsim_core::runtime::ExecutionContext;
use trtsim_core::{Builder, BuilderConfig, Engine};
use trtsim_data::corruptions::{apply_corruption, Corruption, Severity};
use trtsim_data::imagenet::{LabeledImage, SyntheticImageNet};
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_ir::Tensor;
use trtsim_ir::{Graph, ReferenceExecutor};
use trtsim_metrics::top1_error_percent;
use trtsim_models::numeric::{build_classifier, NUMERIC_INPUT};
use trtsim_models::ModelId;
use trtsim_util::derive_seed;
use trtsim_util::pool::{auto_threads, map_indexed};

use crate::support::{EngineFarm, FarmKey, TextTable, CAMPAIGN_SEED};

/// Per-model difficulty constants: (dataset noise σ, over-fit jitter).
/// Calibrated once against Table III's error levels; the orderings between
/// engines are not affected by these dials.
pub fn difficulty(model: ModelId) -> (f32, f32) {
    match model {
        ModelId::Alexnet => (2.0, 0.25),
        ModelId::Resnet18 => (1.6, 0.20),
        ModelId::Vgg16 => (0.85, 0.25),
        ModelId::InceptionV4 => (1.0, 0.25),
        ModelId::Googlenet => (1.0, 0.25),
        _ => (1.0, 0.25),
    }
}

/// Experiment scale knobs (the paper uses 100 classes × 50/20 images; the
/// simulator defaults scale these down and reports rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccuracyConfig {
    /// Number of classes.
    pub classes: usize,
    /// Benign images per class.
    pub benign_per_class: usize,
    /// Adversarial images per class per (corruption, severity).
    pub adversarial_per_class: usize,
    /// How many of the 15 corruption families to use.
    pub corruption_families: usize,
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        Self {
            classes: 20,
            benign_per_class: 25,
            adversarial_per_class: 2,
            corruption_families: 15,
        }
    }
}

impl AccuracyConfig {
    /// A tiny configuration for unit tests.
    pub fn quick() -> Self {
        Self {
            classes: 6,
            benign_per_class: 6,
            adversarial_per_class: 1,
            corruption_families: 3,
        }
    }
}

/// A numeric model plus its dataset, ready for evaluation.
#[derive(Debug)]
pub struct AccuracySetup {
    /// Which zoo model this is the numeric variant of.
    pub model: ModelId,
    /// The dataset generator.
    pub dataset: SyntheticImageNet,
    /// The over-fit "trained" network (the un-optimized baseline).
    pub network: Graph,
}

impl AccuracySetup {
    /// Builds the setup for one classification model.
    pub fn new(model: ModelId, config: &AccuracyConfig) -> Self {
        let (noise, jitter) = difficulty(model);
        let dataset = SyntheticImageNet::new(
            config.classes,
            NUMERIC_INPUT,
            derive_seed(CAMPAIGN_SEED, "imagenet", model as u64),
        )
        .with_snr(1.0, noise);
        let prototypes: Vec<_> = (0..config.classes).map(|c| dataset.prototype(c)).collect();
        let network = build_classifier(
            model,
            &prototypes,
            jitter,
            derive_seed(CAMPAIGN_SEED, "overfit", model as u64),
        );
        Self {
            model,
            dataset,
            network,
        }
    }

    /// Builds (or fetches from the [`EngineFarm`]) TensorRT engine `index` on
    /// `platform` with the model-compression step (magnitude pruning)
    /// enabled. The class count salts the farm key because it changes the
    /// synthesized network.
    pub fn engine(&self, platform: Platform, index: u64) -> Arc<Engine> {
        let seed = derive_seed(
            CAMPAIGN_SEED,
            "accuracy-engine",
            (self.model as u64) << 16 | (platform as u64) << 8 | index,
        );
        let key = FarmKey {
            domain: "accuracy",
            model: self.model,
            platform,
            index,
            variant: self.dataset.classes() as u64,
        };
        EngineFarm::global().get_or_build(key, |cache| {
            // Compression enabled: magnitude pruning restores the exact zeros
            // an over-fitted model has smeared (the dominant denoising
            // effect) and clustering tidies the surviving levels.
            let mut config = BuilderConfig::default()
                .with_build_seed(seed)
                .with_pruning(true)
                .with_timing_cache(cache.clone());
            config.prune_threshold = 0.55;
            Builder::new(DeviceSpec::pinned_clock(platform), config).build(&self.network)
        })
    }

    /// Benign evaluation set.
    pub fn benign(&self, config: &AccuracyConfig) -> Vec<LabeledImage> {
        self.dataset.evaluation_set(config.benign_per_class)
    }

    /// Adversarial evaluation set at one severity.
    pub fn adversarial(&self, config: &AccuracyConfig, severity: Severity) -> Vec<LabeledImage> {
        let mut out = Vec::new();
        for corruption in Corruption::all()
            .into_iter()
            .take(config.corruption_families)
        {
            for class in 0..config.classes {
                for idx in 0..config.adversarial_per_class {
                    let base = self.dataset.sample(class, 1000 + idx);
                    let image = apply_corruption(
                        &base.image,
                        corruption,
                        severity,
                        derive_seed(
                            CAMPAIGN_SEED,
                            corruption.label(),
                            (class * 131 + idx) as u64,
                        ),
                    );
                    out.push(LabeledImage {
                        image,
                        label: class,
                    });
                }
            }
        }
        out
    }

    /// Predictions of the un-optimized network, evaluated across worker
    /// threads (order-stable: results line up with `images`).
    pub fn unopt_predictions(&self, images: &[LabeledImage]) -> Vec<usize> {
        let exec = ReferenceExecutor::new(&self.network).expect("valid network");
        map_indexed(auto_threads(), images.len(), |i| {
            exec.run(&images[i].image).expect("runs")[0]
                .argmax()
                .unwrap_or(0)
        })
    }

    /// Predictions of an engine through its precompiled plan, batched across
    /// worker threads (order-stable and bit-identical to a sequential loop).
    pub fn engine_predictions(&self, engine: &Engine, images: &[LabeledImage]) -> Vec<usize> {
        let ctx = ExecutionContext::new(engine, DeviceSpec::pinned_clock(engine.build_platform()));
        let tensors: Vec<&Tensor> = images.iter().map(|img| &img.image).collect();
        ctx.classify_batch(&tensors, auto_threads()).expect("runs")
    }
}

/// One Table III row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyRow {
    /// Model.
    pub model: ModelId,
    /// TensorRT top-1 error on AGX, percent.
    pub agx_error: f64,
    /// TensorRT top-1 error on NX, percent.
    pub nx_error: f64,
    /// Un-optimized top-1 error, percent.
    pub unopt_error: f64,
}

/// Computes Table III for the paper's three models.
pub fn run_table3(config: &AccuracyConfig) -> Vec<AccuracyRow> {
    [ModelId::Alexnet, ModelId::Resnet18, ModelId::Vgg16]
        .into_iter()
        .map(|model| {
            let setup = AccuracySetup::new(model, config);
            let images = setup.benign(config);
            let labels: Vec<usize> = images.iter().map(|i| i.label).collect();
            let unopt = setup.unopt_predictions(&images);
            let nx = setup.engine_predictions(&setup.engine(Platform::Nx, 0), &images);
            let agx = setup.engine_predictions(&setup.engine(Platform::Agx, 0), &images);
            AccuracyRow {
                model,
                agx_error: top1_error_percent(&agx, &labels),
                nx_error: top1_error_percent(&nx, &labels),
                unopt_error: top1_error_percent(&unopt, &labels),
            }
        })
        .collect()
}

/// One Table IV row (model × severity).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarialRow {
    /// Model.
    pub model: ModelId,
    /// Severity level.
    pub severity: u8,
    /// TensorRT AGX / NX / un-optimized errors, percent.
    pub agx_error: f64,
    /// NX error.
    pub nx_error: f64,
    /// Un-optimized error.
    pub unopt_error: f64,
}

/// Diagnostic: Table III rows for ResNet-18 only (calibration loop).
pub fn run_table3_resnet_only(config: &AccuracyConfig) -> Vec<AccuracyRow> {
    let model = ModelId::Resnet18;
    let setup = AccuracySetup::new(model, config);
    let images = setup.benign(config);
    let labels: Vec<usize> = images.iter().map(|i| i.label).collect();
    let unopt = setup.unopt_predictions(&images);
    let nx = setup.engine_predictions(&setup.engine(Platform::Nx, 0), &images);
    vec![AccuracyRow {
        model,
        agx_error: 0.0,
        nx_error: top1_error_percent(&nx, &labels),
        unopt_error: top1_error_percent(&unopt, &labels),
    }]
}

/// Computes Table IV (severities 1 and 5).
pub fn run_table4(config: &AccuracyConfig) -> Vec<AdversarialRow> {
    let mut rows = Vec::new();
    for model in [ModelId::Alexnet, ModelId::Resnet18, ModelId::Vgg16] {
        let setup = AccuracySetup::new(model, config);
        let nx_engine = setup.engine(Platform::Nx, 0);
        let agx_engine = setup.engine(Platform::Agx, 0);
        for severity in [Severity::new(1), Severity::new(5)] {
            let images = setup.adversarial(config, severity);
            let labels: Vec<usize> = images.iter().map(|i| i.label).collect();
            rows.push(AdversarialRow {
                model,
                severity: severity.level(),
                agx_error: top1_error_percent(
                    &setup.engine_predictions(&agx_engine, &images),
                    &labels,
                ),
                nx_error: top1_error_percent(
                    &setup.engine_predictions(&nx_engine, &images),
                    &labels,
                ),
                unopt_error: top1_error_percent(&setup.unopt_predictions(&images), &labels),
            });
        }
    }
    rows
}

/// Renders Table III.
pub fn render_table3(rows: &[AccuracyRow]) -> String {
    let mut t = TextTable::new(vec![
        "NN Model".into(),
        "AGX Error(%) TensorRT".into(),
        "NX Error(%) TensorRT".into(),
        "Error(%) Unoptimized".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.model.to_string(),
            format!("{:.2}", r.agx_error),
            format!("{:.2}", r.nx_error),
            format!("{:.2}", r.unopt_error),
        ]);
    }
    format!("Table III: Top-1 error on benign data\n{}", t.render())
}

/// Renders Table IV.
pub fn render_table4(rows: &[AdversarialRow]) -> String {
    let mut t = TextTable::new(vec![
        "NN Model".into(),
        "Severity".into(),
        "AGX Error(%) TensorRT".into(),
        "NX Error(%) TensorRT".into(),
        "Error(%) Unoptimized".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.model.to_string(),
            r.severity.to_string(),
            format!("{:.2}", r.agx_error),
            format!("{:.2}", r.nx_error),
            format!("{:.2}", r.unopt_error),
        ]);
    }
    format!("Table IV: Top-1 error on adversarial data\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensorrt_error_not_worse_than_unoptimized() {
        // Finding 1, on the quick configuration (36 images/model: one image
        // is ~3 percentage points, so judge the average and cap per model).
        let rows = run_table3(&AccuracyConfig::quick());
        let mean_delta: f64 =
            rows.iter().map(|r| r.nx_error - r.unopt_error).sum::<f64>() / rows.len() as f64;
        assert!(
            mean_delta <= 1.0,
            "TRT should not be worse on average: {mean_delta:+.1} points ({rows:?})"
        );
        for r in &rows {
            assert!(
                r.nx_error <= r.unopt_error + 8.0,
                "{}: TRT {} vs unopt {}",
                r.model,
                r.nx_error,
                r.unopt_error
            );
        }
    }

    #[test]
    fn severity_5_is_much_worse_than_1() {
        let rows = run_table4(&AccuracyConfig::quick());
        for model in [ModelId::Alexnet, ModelId::Resnet18, ModelId::Vgg16] {
            let s1 = rows
                .iter()
                .find(|r| r.model == model && r.severity == 1)
                .unwrap();
            let s5 = rows
                .iter()
                .find(|r| r.model == model && r.severity == 5)
                .unwrap();
            assert!(
                s5.unopt_error > s1.unopt_error,
                "{model}: sev5 {} !> sev1 {}",
                s5.unopt_error,
                s1.unopt_error
            );
        }
    }

    #[test]
    fn errors_are_nontrivial_rates() {
        let rows = run_table3(&AccuracyConfig::quick());
        for r in &rows {
            assert!(r.unopt_error > 0.0, "{}: dataset too easy", r.model);
            assert!(r.nx_error < 100.0, "{}: dataset impossible", r.model);
        }
    }

    #[test]
    fn renders() {
        let rows = run_table3(&AccuracyConfig::quick());
        assert!(render_table3(&rows).contains("Unoptimized"));
    }
}
