//! Table II: model sizes, un-optimized vs TensorRT engines for NX and AGX.

use trtsim_gpu::device::Platform;
use trtsim_models::ModelId;

use crate::support::{EngineFarm, TextTable};

/// One Table II row.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeRow {
    /// Model.
    pub model: ModelId,
    /// Architecture summary (conv / max-pool counts).
    pub architecture: String,
    /// FP32 model size, MiB.
    pub unoptimized_mib: f64,
    /// NX engine plan size, MiB.
    pub engine_nx_mib: f64,
    /// AGX engine plan size, MiB.
    pub engine_agx_mib: f64,
}

/// The computed table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// All 13 rows, paper order.
    pub rows: Vec<SizeRow>,
}

const MIB: f64 = (1u64 << 20) as f64;

/// Builds every model and both engines, computing all plan sizes.
pub fn run() -> Table2 {
    let rows = ModelId::all()
        .into_iter()
        .map(|model| {
            let graph = model.descriptor();
            let nx = EngineFarm::global().zoo(model, Platform::Nx, 0);
            let agx = EngineFarm::global().zoo(model, Platform::Agx, 0);
            SizeRow {
                model,
                architecture: format!(
                    "{} conv, {} max pool",
                    graph.conv_count(),
                    graph.max_pool_count()
                ),
                unoptimized_mib: graph.fp32_bytes() as f64 / MIB,
                engine_nx_mib: nx.plan_size_bytes() as f64 / MIB,
                engine_agx_mib: agx.plan_size_bytes() as f64 / MIB,
            }
        })
        .collect();
    Table2 { rows }
}

impl Table2 {
    /// Renders in the paper's layout.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "NN Model".into(),
            "# Layers".into(),
            "Un-optimized (MiB)".into(),
            "Engine NX (MiB)".into(),
            "Engine AGX (MiB)".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.model.to_string(),
                r.architecture.clone(),
                format!("{:.2}", r.unoptimized_mib),
                format!("{:.2}", r.engine_nx_mib),
                format!("{:.2}", r.engine_agx_mib),
            ]);
        }
        format!(
            "Table II: Model sizes with and without TensorRT optimizations\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_are_smaller_than_models_for_big_networks() {
        let table = run();
        for r in &table.rows {
            // Small models are dominated by the embedded runtime payload
            // (MTCNN grows, as in the paper); everything ≥ 20 MiB shrinks.
            if r.unoptimized_mib > 20.0 {
                assert!(
                    r.engine_nx_mib < r.unoptimized_mib,
                    "{}: {} !< {}",
                    r.model,
                    r.engine_nx_mib,
                    r.unoptimized_mib
                );
            }
        }
    }

    #[test]
    fn fp16_engines_near_half_size() {
        let table = run();
        let vgg = table
            .rows
            .iter()
            .find(|r| r.model == ModelId::Vgg16)
            .unwrap();
        let ratio = vgg.engine_nx_mib / vgg.unoptimized_mib;
        assert!((0.45..0.62).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn mtcnn_engine_grows_like_the_paper() {
        // Paper: 1.9 MiB model → 3.8 / 4.78 MiB engines (runtime payload
        // dominates tiny models).
        let table = run();
        let m = table
            .rows
            .iter()
            .find(|r| r.model == ModelId::Mtcnn)
            .unwrap();
        assert!(m.engine_nx_mib > m.unoptimized_mib);
        assert!(m.engine_agx_mib > m.engine_nx_mib);
    }

    #[test]
    fn googlenet_engine_is_far_below_half() {
        // Dead aux heads removed + FP16: 51 MiB → ~13.6 MiB in the paper.
        let table = run();
        let g = table
            .rows
            .iter()
            .find(|r| r.model == ModelId::Googlenet)
            .unwrap();
        assert!(
            g.engine_nx_mib < 0.42 * g.unoptimized_mib,
            "{} vs {}",
            g.engine_nx_mib,
            g.unoptimized_mib
        );
    }

    #[test]
    fn renders_all_rows() {
        let table = run();
        let s = table.render();
        assert_eq!(table.rows.len(), 13);
        assert!(s.contains("Tiny-Yolov3") && s.contains("MTCNN"));
    }
}
