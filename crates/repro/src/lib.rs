//! Experiment harnesses: one module per table/figure of the paper.
//!
//! Every module exposes a `run()` returning a structured result with a
//! `render()` method producing the table text; the binaries under
//! `src/bin/` are thin wrappers. `cargo run --release -p trtsim-repro --bin
//! all_experiments` regenerates everything (EXPERIMENTS.md records the
//! paper-vs-measured comparison).
//!
//! Experiment conditions follow §II-F: latency tables run at the pinned
//! clocks (599 / 624 MHz) with ten measured runs; throughput/concurrency
//! experiments run at the board-maximum clocks.

#![warn(missing_docs)]

pub mod exp_ablation;
pub mod exp_accuracy;
pub mod exp_bsp;
pub mod exp_concurrency;
pub mod exp_consistency;
pub mod exp_fps;
pub mod exp_latency;
pub mod exp_memcpy;
pub mod exp_platforms;
pub mod exp_serving;
pub mod exp_sizes;
pub mod exp_summary;
pub mod exp_variability;
pub mod support;
