//! Tables XIV–XVI: the qualitative findings summary, derived from measured
//! data rather than hand-written (each claim is checked against this run's
//! own results before being printed).

use crate::exp_accuracy::{run_table3, AccuracyConfig};
use crate::exp_concurrency;
use crate::exp_fps;
use crate::exp_latency;
use crate::support::TextTable;
use trtsim_gpu::device::Platform;
use trtsim_models::ModelId;

/// One summary line with its measured evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct FindingRow {
    /// Short finding name (paper Table XIV column 1).
    pub finding: String,
    /// Whether this run's data supports it.
    pub supported: bool,
    /// Measured evidence string.
    pub evidence: String,
    /// "Positive" or "Unpredictable" (paper Table XIV column 3).
    pub impact: &'static str,
}

/// Computes the findings matrix from (scaled-down) reruns of the underlying
/// experiments.
pub fn run() -> Vec<FindingRow> {
    let mut rows = Vec::new();

    // Finding 1: accuracy maintained (average over models; single images
    // are worth ~3 points at the quick scale).
    let acc = run_table3(&AccuracyConfig::quick());
    let mean_delta: f64 =
        acc.iter().map(|r| r.nx_error - r.unopt_error).sum::<f64>() / acc.len() as f64;
    let maintained = mean_delta <= 1.0;
    rows.push(FindingRow {
        finding: "Maintain task accuracy".into(),
        supported: maintained,
        evidence: acc
            .iter()
            .map(|r| {
                format!(
                    "{}: TRT {:.1}% vs unopt {:.1}%",
                    r.model, r.nx_error, r.unopt_error
                )
            })
            .collect::<Vec<_>>()
            .join("; "),
        impact: "Positive",
    });

    // Finding 3: throughput gain + concurrency.
    let fps = exp_fps::run();
    let mean_gain: f64 = fps.rows.iter().map(|r| r.gain()[0]).sum::<f64>() / fps.rows.len() as f64;
    let yolo = exp_concurrency::run(ModelId::TinyYolov3, Platform::Agx);
    rows.push(FindingRow {
        finding: "Throughput gain, higher concurrency".into(),
        supported: mean_gain > 5.0 && yolo.max_threads() >= 16,
        evidence: format!(
            "mean NX speedup {mean_gain:.1}x; Tiny-YOLOv3 packs {} threads on AGX at {:.0}% util",
            yolo.max_threads(),
            yolo.saturation_utilization_percent()
        ),
        impact: "Positive",
    });

    // Findings 4-6: non-deterministic inference times / anomalies, on a
    // representative subset (the full matrix is table8's job).
    let latency = exp_latency::run_subset(&[
        ModelId::Alexnet,
        ModelId::Resnet18,
        ModelId::Pednet,
        ModelId::Facenet,
        ModelId::Mobilenetv1,
        ModelId::Googlenet,
    ]);
    let anomalous = latency.anomalous_rows();
    rows.push(FindingRow {
        finding: "Non-deterministic inference times".into(),
        supported: anomalous > 0,
        evidence: format!(
            "{anomalous} of {} models show at least one cross-platform latency anomaly",
            latency.rows.len()
        ),
        impact: "Unpredictable",
    });

    rows
}

/// Renders the summary matrix.
pub fn render(rows: &[FindingRow]) -> String {
    let mut t = TextTable::new(vec![
        "Finding".into(),
        "Supported by this run".into(),
        "Impact".into(),
        "Evidence".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.finding.clone(),
            if r.supported { "yes" } else { "NO" }.into(),
            r.impact.into(),
            r.evidence.clone(),
        ]);
    }
    format!(
        "Tables XIV-XVI: summary of findings, re-derived from measured data\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_findings_supported() {
        let rows = super::run();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.supported,
                "finding not reproduced: {} ({})",
                r.finding, r.evidence
            );
        }
    }
}
