//! Table I: evaluation platforms.

use trtsim_gpu::device::DeviceSpec;

use crate::support::TextTable;

/// Renders the Table I comparison of the two simulated boards.
pub fn run() -> String {
    let nx = DeviceSpec::xavier_nx();
    let agx = DeviceSpec::xavier_agx();
    let mut t = TextTable::new(vec![
        "".into(),
        "Xavier NX (GV10B)".into(),
        "Xavier AGX (GV10B)".into(),
    ]);
    let mut push = |label: &str, f: &dyn Fn(&DeviceSpec) -> String| {
        t.row(vec![label.to_string(), f(&nx), f(&agx)]);
    };
    push("# GPU cores", &|d| {
        format!("{} ({} per SM)", d.cuda_cores(), d.cores_per_sm)
    });
    push("# SMs", &|d| d.sm_count.to_string());
    push("# Tensor cores", &|d| {
        format!("{} ({} per SM)", d.tensor_cores(), d.tensor_cores_per_sm)
    });
    push("L1 cache", &|d| format!("{}KB per SM", d.l1_kib_per_sm));
    push("L2 cache", &|d| format!("{}KB", d.l2_kib));
    push("Memory", &|d| {
        format!(
            "{}GB {}-bit LPDDR4x {:.1}GB/s",
            d.dram_gib, d.mem_bus_bits, d.dram_bandwidth_gbps
        )
    });
    push("GPU clock", &|d| {
        format!("{:.3} GHz", d.max_gpu_clock_mhz / 1000.0)
    });
    format!("Table I: Evaluation platforms\n{}", t.render())
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_matches_paper_values() {
        let s = super::run();
        for needle in [
            "384", "512", "6", "8", "48", "64", "51.2", "137", "128KB", "512KB",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }
}
