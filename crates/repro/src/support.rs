//! Shared harness plumbing: engine construction, measurement conditions,
//! and plain-text table rendering.

use trtsim_core::runtime::TimingOptions;
use trtsim_core::{Builder, BuilderConfig, Engine, EngineError};
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_models::ModelId;
use trtsim_util::derive_seed;

/// Root seed of the whole experiment campaign; every stochastic input
/// derives from it, so the entire reproduction is replayable.
pub const CAMPAIGN_SEED: u64 = 0x1155_u64 << 32 | 2021; // IISWC 2021

/// Builds engine number `build_index` of `model` on `platform` at the pinned
/// experiment clock (the paper builds several engines per platform to study
/// build-to-build variation).
///
/// # Errors
///
/// Propagates [`EngineError`] from the builder.
pub fn build_engine(
    model: ModelId,
    platform: Platform,
    build_index: u64,
) -> Result<Engine, EngineError> {
    let device = DeviceSpec::pinned_clock(platform);
    let seed = derive_seed(
        CAMPAIGN_SEED,
        model.info().name,
        (platform as u64) << 32 | build_index,
    );
    Builder::new(device, BuilderConfig::default().with_build_seed(seed)).build(&model.descriptor())
}

/// Timing conditions of the paper's Table VIII (nvprof attached, engine
/// upload included, pinned clocks).
pub fn table8_options(model: ModelId) -> TimingOptions {
    let info = model.info();
    TimingOptions::default()
        .profiled()
        .with_host_glue_us(info.host_glue_us + info.table8_harness_us)
}

/// Timing conditions of Table IX (same, without nvprof).
pub fn table9_options(model: ModelId) -> TimingOptions {
    let info = model.info();
    TimingOptions::default().with_host_glue_us(info.host_glue_us + info.table8_harness_us)
}

/// Number of timed runs per cell ("each TensorRT engine obtained is executed
/// for 10 runs", §II-F).
pub const RUNS: usize = 10;

/// A plain-text table builder with aligned columns.
///
/// # Examples
///
/// ```
/// use trtsim_repro::support::TextTable;
/// let mut t = TextTable::new(vec!["model".into(), "fps".into()]);
/// t.row(vec!["Alexnet".into(), "190.4".into()]);
/// let s = t.render();
/// assert!(s.contains("Alexnet"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |row: &[String], widths: &mut Vec<usize>| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&self.header, &mut widths);
        for row in &self.rows {
            measure(row, &mut widths);
        }
        let render_row = |row: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a mean in ms from µs samples (two decimals, paper style).
pub fn ms(us: f64) -> String {
    format!("{:.2}", us / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_build_for_both_platforms() {
        for platform in Platform::all() {
            let e = build_engine(ModelId::TinyYolov3, platform, 0).unwrap();
            assert_eq!(e.build_platform(), platform);
            assert!(e.launch_count() > 10);
        }
    }

    #[test]
    fn build_indices_give_different_engines() {
        let a = build_engine(ModelId::Mtcnn, Platform::Nx, 0).unwrap();
        let b = build_engine(ModelId::Mtcnn, Platform::Nx, 1).unwrap();
        assert_ne!(a.build_seed(), b.build_seed());
    }

    #[test]
    fn same_index_is_reproducible() {
        let a = build_engine(ModelId::Mtcnn, Platform::Nx, 0).unwrap();
        let b = build_engine(ModelId::Mtcnn, Platform::Nx, 0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn table8_options_attach_profiler() {
        let o = table8_options(ModelId::Alexnet);
        assert!(o.profiling.per_launch_us > 0.0);
        let o9 = table9_options(ModelId::Alexnet);
        assert_eq!(o9.profiling.per_launch_us, 0.0);
    }
}
