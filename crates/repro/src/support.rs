//! Shared harness plumbing: engine construction (direct and farmed),
//! measurement conditions, and plain-text table rendering.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use trtsim_core::runtime::TimingOptions;
use trtsim_core::{Builder, BuilderConfig, Engine, EngineError, TimingCache};
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_gpu::timeline::ProfilingOverhead;
use trtsim_metrics::{CacheStats, Counter, Registry};
use trtsim_models::ModelId;
use trtsim_util::{derive_seed, pool};

/// A farm counter in the global registry, labelled by event kind
/// (`trtsim_farm_events_total{event=...}`): `requests` for every lookup,
/// `builds` when the closure actually ran, `memoized` for dedup hand-outs.
fn farm_counter(event: &str) -> Counter {
    Registry::global().counter(
        "trtsim_farm_events_total",
        "Engine-farm lookups by outcome: requests, builds, memoized hand-outs",
        &[("event", event)],
    )
}

/// Root seed of the whole experiment campaign; every stochastic input
/// derives from it, so the entire reproduction is replayable.
pub const CAMPAIGN_SEED: u64 = 0x1155_u64 << 32 | 2021; // IISWC 2021

/// The pinned build seed of engine `build_index` of `model` on `platform` —
/// the one derivation every harness shares, so a farmed engine and a
/// directly-built one are bit-identical.
pub fn zoo_seed(model: ModelId, platform: Platform, build_index: u64) -> u64 {
    derive_seed(
        CAMPAIGN_SEED,
        model.info().name,
        (platform as u64) << 32 | build_index,
    )
}

/// Builds engine number `build_index` of `model` on `platform` at the pinned
/// experiment clock (the paper builds several engines per platform to study
/// build-to-build variation), bypassing the [`EngineFarm`]. Harnesses should
/// prefer [`EngineFarm::zoo`], which memoizes; this direct path is for
/// reproducibility tests and for callers that need an owned [`Engine`].
///
/// # Errors
///
/// Propagates [`EngineError`] from the builder.
pub fn build_engine(
    model: ModelId,
    platform: Platform,
    build_index: u64,
) -> Result<Engine, EngineError> {
    let device = DeviceSpec::pinned_clock(platform);
    let seed = zoo_seed(model, platform, build_index);
    Builder::new(device, BuilderConfig::default().with_build_seed(seed)).build(&model.descriptor())
}

/// Identifies one engine request in the [`EngineFarm`].
///
/// `domain` separates request families that build different networks or
/// configurations from the same `(model, platform, index)` triple (the zoo
/// engines versus the numeric accuracy engines), and `variant` carries any
/// further configuration salt a domain needs (e.g. the accuracy harness'
/// class count, which changes the synthesized network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FarmKey {
    /// Request family (e.g. `"zoo"`, `"accuracy"`).
    pub domain: &'static str,
    /// Which zoo model the request concerns.
    pub model: ModelId,
    /// Build platform.
    pub platform: Platform,
    /// Build index within the family (the paper builds several engines per
    /// platform).
    pub index: u64,
    /// Domain-specific configuration salt.
    pub variant: u64,
}

/// Counters describing what the farm has done so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FarmStats {
    /// Engine requests served (including deduplicated ones).
    pub requests: u64,
    /// Engines actually built (`requests - builds` were served from memory).
    pub builds: u64,
    /// Timing-cache counters of the farm's shared [`TimingCache`].
    pub timing: CacheStats,
}

/// A concurrent, deduplicating engine build farm.
///
/// The paper's methodology rebuilds the 13-model zoo for nearly every table —
/// often per platform and per build index. The farm gives every harness the
/// same three amortizations real build infrastructure would:
///
/// 1. **Memoization** — identical `(domain, model, platform, index, variant)`
///    requests are built once and handed out as [`Arc<Engine>`] clones, even
///    when requested concurrently (in-flight dedup, not just after-the-fact).
/// 2. **A shared [`TimingCache`]** — every farmed build reuses the
///    deterministic timing component across models and seeds, exactly like
///    TensorRT's `ITimingCache` (noise is still drawn fresh per build).
/// 3. **Parallel prefetch** — [`EngineFarm::prefetch_zoo`] builds a request
///    list on the scoped worker pool.
///
/// Farmed engines are bit-identical to [`build_engine`]'s output: the cache
/// and the worker pool are output-invariant by construction.
///
/// # Examples
///
/// ```
/// use trtsim_repro::support::EngineFarm;
/// use trtsim_gpu::device::Platform;
/// use trtsim_models::ModelId;
///
/// let farm = EngineFarm::new();
/// let a = farm.zoo(ModelId::Mtcnn, Platform::Nx, 0);
/// let b = farm.zoo(ModelId::Mtcnn, Platform::Nx, 0);
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(farm.stats().builds, 1);
/// ```
#[derive(Debug, Default)]
pub struct EngineFarm {
    cache: Arc<TimingCache>,
    slots: Mutex<HashMap<FarmKey, Arc<OnceLock<Arc<Engine>>>>>,
    requests: AtomicU64,
    builds: AtomicU64,
}

impl EngineFarm {
    /// Creates an empty farm with a fresh timing cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide farm shared by every experiment harness, so that
    /// `all_experiments` (and the test suite) builds each engine once.
    pub fn global() -> &'static EngineFarm {
        static FARM: OnceLock<EngineFarm> = OnceLock::new();
        FARM.get_or_init(EngineFarm::new)
    }

    /// The farm's shared timing cache (attach it to out-of-farm builders to
    /// share the memoized timings).
    pub fn timing_cache(&self) -> &Arc<TimingCache> {
        &self.cache
    }

    /// The standard zoo engine `(model, platform, build_index)` — built on
    /// first request, shared afterwards. Bit-identical to [`build_engine`].
    ///
    /// # Panics
    ///
    /// Panics if the build fails; zoo models build by construction.
    pub fn zoo(&self, model: ModelId, platform: Platform, build_index: u64) -> Arc<Engine> {
        let key = FarmKey {
            domain: "zoo",
            model,
            platform,
            index: build_index,
            variant: 0,
        };
        self.get_or_build(key, |cache| {
            Builder::new(
                DeviceSpec::pinned_clock(platform),
                BuilderConfig::default()
                    .with_build_seed(zoo_seed(model, platform, build_index))
                    .with_timing_cache(cache.clone()),
            )
            .build(&model.descriptor())
        })
    }

    /// Builds (or returns the memoized) engine for `key`, running `build` at
    /// most once per key even under concurrent requests. The closure receives
    /// the farm's shared timing cache to attach to its builder.
    ///
    /// # Panics
    ///
    /// Panics if `build` returns an error — harness engines build by
    /// construction, and a failed build must not poison the slot silently.
    pub fn get_or_build(
        &self,
        key: FarmKey,
        build: impl FnOnce(&Arc<TimingCache>) -> Result<Engine, EngineError>,
    ) -> Arc<Engine> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        farm_counter("requests").inc();
        let slot = {
            let mut slots = self.slots.lock().expect("farm slots poisoned");
            Arc::clone(slots.entry(key).or_default())
        };
        // Initialization runs outside the map lock, so concurrent requests
        // for *different* engines build in parallel while duplicates of the
        // same key block here until the first build lands.
        let mut built_here = false;
        let engine = Arc::clone(slot.get_or_init(|| {
            self.builds.fetch_add(1, Ordering::Relaxed);
            farm_counter("builds").inc();
            built_here = true;
            Arc::new(build(&self.cache).expect("farm engine build failed"))
        }));
        if !built_here {
            // Request served from a memoized (or concurrently deduplicated)
            // engine: the build was avoided entirely.
            farm_counter("memoized").inc();
        }
        engine
    }

    /// Builds every requested zoo engine concurrently on the scoped worker
    /// pool, deduplicating repeated triples. Later [`zoo`](Self::zoo) calls
    /// for these triples are then instant hand-outs.
    pub fn prefetch_zoo(&self, requests: &[(ModelId, Platform, u64)]) {
        pool::map_indexed(pool::auto_threads(), requests.len(), |i| {
            let (model, platform, index) = requests[i];
            self.zoo(model, platform, index);
        });
    }

    /// Number of distinct engines currently held.
    pub fn len(&self) -> usize {
        self.slots.lock().expect("farm slots poisoned").len()
    }

    /// Whether the farm holds no engines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Request/build/timing counters so far.
    pub fn stats(&self) -> FarmStats {
        FarmStats {
            requests: self.requests.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            timing: self.cache.stats(),
        }
    }
}

/// Timing conditions of the paper's Table VIII (nvprof attached, engine
/// upload included, pinned clocks).
pub fn table8_options(model: ModelId) -> TimingOptions {
    let info = model.info();
    TimingOptions::default()
        .with_profiling(ProfilingOverhead::nvprof())
        .with_host_glue_us(info.host_glue_us + info.table8_harness_us)
}

/// Timing conditions of Table IX (same, without nvprof).
pub fn table9_options(model: ModelId) -> TimingOptions {
    let info = model.info();
    TimingOptions::default().with_host_glue_us(info.host_glue_us + info.table8_harness_us)
}

/// Number of timed runs per cell ("each TensorRT engine obtained is executed
/// for 10 runs", §II-F).
pub const RUNS: usize = 10;

/// A plain-text table builder with aligned columns.
///
/// # Examples
///
/// ```
/// use trtsim_repro::support::TextTable;
/// let mut t = TextTable::new(vec!["model".into(), "fps".into()]);
/// t.row(vec!["Alexnet".into(), "190.4".into()]);
/// let s = t.render();
/// assert!(s.contains("Alexnet"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |row: &[String], widths: &mut Vec<usize>| {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        };
        measure(&self.header, &mut widths);
        for row in &self.rows {
            measure(row, &mut widths);
        }
        let render_row = |row: &[String]| {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a mean in ms from µs samples (two decimals, paper style).
pub fn ms(us: f64) -> String {
    format!("{:.2}", us / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_build_for_both_platforms() {
        for platform in Platform::all() {
            let e = build_engine(ModelId::TinyYolov3, platform, 0).unwrap();
            assert_eq!(e.build_platform(), platform);
            assert!(e.launch_count() > 10);
        }
    }

    #[test]
    fn build_indices_give_different_engines() {
        let a = build_engine(ModelId::Mtcnn, Platform::Nx, 0).unwrap();
        let b = build_engine(ModelId::Mtcnn, Platform::Nx, 1).unwrap();
        assert_ne!(a.build_seed(), b.build_seed());
    }

    #[test]
    fn same_index_is_reproducible() {
        let a = build_engine(ModelId::Mtcnn, Platform::Nx, 0).unwrap();
        let b = build_engine(ModelId::Mtcnn, Platform::Nx, 0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn farmed_engine_is_bit_identical_to_direct_build() {
        // The farm's shared timing cache and worker pool must be
        // output-invariant: a zoo engine equals build_engine's output.
        let farm = EngineFarm::new();
        let farmed = farm.zoo(ModelId::Mtcnn, Platform::Agx, 1);
        let direct = build_engine(ModelId::Mtcnn, Platform::Agx, 1).unwrap();
        assert_eq!(*farmed, direct);
    }

    #[test]
    fn farm_dedupes_concurrent_requests() {
        let farm = EngineFarm::new();
        let engines = pool::map_indexed(8, 16, |i| {
            farm.zoo(ModelId::Mtcnn, Platform::Nx, (i % 2) as u64)
        });
        for (i, e) in engines.iter().enumerate() {
            assert!(Arc::ptr_eq(e, &engines[i % 2]));
        }
        let stats = farm.stats();
        assert_eq!(farm.len(), 2);
        assert_eq!(stats.builds, 2, "in-flight duplicates must not rebuild");
        assert_eq!(stats.requests, 16);
    }

    #[test]
    fn prefetch_then_zoo_hands_out_without_building() {
        let farm = EngineFarm::new();
        farm.prefetch_zoo(&[
            (ModelId::Mtcnn, Platform::Nx, 0),
            (ModelId::Mtcnn, Platform::Agx, 0),
            (ModelId::Mtcnn, Platform::Nx, 0), // duplicate in the request list
        ]);
        assert_eq!(farm.stats().builds, 2);
        farm.zoo(ModelId::Mtcnn, Platform::Nx, 0);
        assert_eq!(
            farm.stats().builds,
            2,
            "post-prefetch zoo must be a hand-out"
        );
    }

    #[test]
    fn farm_timing_cache_fills_and_hits() {
        let farm = EngineFarm::new();
        farm.zoo(ModelId::Mtcnn, Platform::Nx, 0);
        let cold = farm.stats().timing;
        assert!(cold.misses > 0, "first build must populate the cache");
        farm.zoo(ModelId::Mtcnn, Platform::Nx, 1);
        let warm = farm.stats().timing;
        assert!(
            warm.hits > cold.hits,
            "second build of the same model must reuse timings"
        );
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn table8_options_attach_profiler() {
        let o = table8_options(ModelId::Alexnet);
        assert!(o.profiling.per_launch_us > 0.0);
        let o9 = table9_options(ModelId::Alexnet);
        assert_eq!(o9.profiling.per_launch_us, 0.0);
    }
}
