//! Tables X and XI: decomposing the cross-platform latency anomaly into the
//! `cudaMemcpyHostToDevice` term and per-kernel slowdowns.

use std::path::Path;

use trtsim_core::runtime::ExecutionContext;
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_gpu::timeline::GpuTimeline;
use trtsim_metrics::LatencyCell;
use trtsim_models::ModelId;
use trtsim_profiler::{summarize, write_chrome_trace, KernelSummary};

use crate::support::{table8_options, EngineFarm, TextTable, RUNS};

/// One Table X row: a model's latency with and without the engine-upload
/// memcpy, on NX and AGX, using the same NX-built engine.
#[derive(Debug, Clone, PartialEq)]
pub struct MemcpyRow {
    /// Model.
    pub model: ModelId,
    /// cNX_rNX with memcpy / without memcpy.
    pub nx: [LatencyCell; 2],
    /// cNX_rAGX with memcpy / without memcpy.
    pub agx: [LatencyCell; 2],
}

impl MemcpyRow {
    /// Whether removing the memcpy flips the NX/AGX ordering (the ResNet-18
    /// / Inception-v4 pattern in the paper).
    pub fn memcpy_explains_anomaly(&self) -> bool {
        self.agx[0].mean_ms > self.nx[0].mean_ms && self.agx[1].mean_ms < self.nx[1].mean_ms
    }
}

/// The models the paper examines in Table X.
pub fn table10_models() -> [ModelId; 5] {
    [
        ModelId::Resnet18,
        ModelId::InceptionV4,
        ModelId::Pednet,
        ModelId::Facenet,
        ModelId::Mobilenetv1,
    ]
}

/// Computes Table X.
pub fn run_table10() -> Vec<MemcpyRow> {
    table10_models()
        .into_iter()
        .map(|model| {
            let engine = EngineFarm::global().zoo(model, Platform::Nx, 0);
            let opts = table8_options(model);
            let measure = |platform: Platform, with_memcpy: bool| {
                let ctx = ExecutionContext::new(&engine, DeviceSpec::pinned_clock(platform));
                let opts = if with_memcpy {
                    opts
                } else {
                    opts.without_engine_upload()
                };
                LatencyCell::from_runs_us(&ctx.measure_latency(&opts, RUNS, model as u64))
            };
            MemcpyRow {
                model,
                nx: [measure(Platform::Nx, true), measure(Platform::Nx, false)],
                agx: [measure(Platform::Agx, true), measure(Platform::Agx, false)],
            }
        })
        .collect()
}

/// Renders Table X.
pub fn render_table10(rows: &[MemcpyRow]) -> String {
    let mut t = TextTable::new(vec![
        "NN Model".into(),
        "cNX_rNX memcpy incl.".into(),
        "cNX_rNX memcpy excl.".into(),
        "cNX_rAGX memcpy incl.".into(),
        "cNX_rAGX memcpy excl.".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.model.to_string(),
            r.nx[0].to_string(),
            r.nx[1].to_string(),
            r.agx[0].to_string(),
            r.agx[1].to_string(),
        ]);
    }
    format!(
        "Table X: run time with CUDA memcpy included and excluded\n{}",
        t.render()
    )
}

/// Builds the timeline behind one Table X cell: the NX-built engine's upload
/// (the plan-sized H2D spike the paper reads out of the visual trace)
/// followed by `runs` back-to-back inferences whose per-frame input copies
/// form the uniform H2D population the spike stands out from. Feed the
/// result to `trtsim_profiler::anomaly::h2d_outliers` to recover the
/// anomaly, or to `trtsim_profiler::chrome_trace` to look at it.
pub fn memcpy_trace_timeline(model: ModelId, platform: Platform, runs: usize) -> GpuTimeline {
    let engine = EngineFarm::global().zoo(model, Platform::Nx, 0);
    let device = DeviceSpec::pinned_clock(platform);
    let ctx = ExecutionContext::new(&engine, device.clone());
    let mut tl = GpuTimeline::new(device);
    let s = tl.create_stream();
    ctx.upload_engine(&mut tl, s);
    let opts = table8_options(model).without_engine_upload();
    for _ in 0..runs {
        ctx.enqueue_inference(&mut tl, s, &opts);
    }
    tl
}

/// Writes [`memcpy_trace_timeline`] as chrome://tracing JSON.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_memcpy_trace(
    path: impl AsRef<Path>,
    model: ModelId,
    platform: Platform,
    runs: usize,
) -> std::io::Result<()> {
    let tl = memcpy_trace_timeline(model, platform, runs);
    write_chrome_trace(path, &tl, &format!("{model} cNX_r{platform}"))
}

/// One Table XI row: a kernel that runs slower on AGX than on NX.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelCompareRow {
    /// Model whose engine contains the kernel.
    pub model: ModelId,
    /// Kernel symbol.
    pub kernel: String,
    /// Total time on NX, ms.
    pub nx_ms: f64,
    /// Total time on AGX, ms.
    pub agx_ms: f64,
}

/// Computes Table XI: per-kernel times of the same NX-built engine on both
/// platforms, reporting kernels slower on AGX.
pub fn run_table11(models: &[ModelId]) -> Vec<KernelCompareRow> {
    let mut out = Vec::new();
    for &model in models {
        let engine = EngineFarm::global().zoo(model, Platform::Nx, 0);
        let profile = |platform: Platform| -> Vec<KernelSummary> {
            let mut tl = GpuTimeline::new(DeviceSpec::pinned_clock(platform));
            let s = tl.create_stream();
            let ctx = ExecutionContext::new(&engine, DeviceSpec::pinned_clock(platform));
            ctx.enqueue_inference(&mut tl, s, &table8_options(model));
            summarize(&tl).kernels
        };
        let nx = profile(Platform::Nx);
        let agx = profile(Platform::Agx);
        for k_nx in &nx {
            let Some(k_agx) = agx.iter().find(|k| k.name == k_nx.name) else {
                continue;
            };
            if k_agx.total_us > 1.02 * k_nx.total_us {
                out.push(KernelCompareRow {
                    model,
                    kernel: k_nx.name.clone(),
                    nx_ms: k_nx.total_us / 1000.0,
                    agx_ms: k_agx.total_us / 1000.0,
                });
            }
        }
    }
    out
}

/// Renders Table XI.
pub fn render_table11(rows: &[KernelCompareRow]) -> String {
    let mut t = TextTable::new(vec![
        "NN Model".into(),
        "Kernel".into(),
        "cNX_rNX (ms)".into(),
        "cNX_rAGX (ms)".into(),
    ]);
    for r in rows {
        t.row(vec![
            r.model.to_string(),
            r.kernel.clone(),
            format!("{:.2}", r.nx_ms),
            format!("{:.2}", r.agx_ms),
        ]);
    }
    format!(
        "Table XI: kernels running slower on AGX than NX (same NX-built engine)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcpy_excluded_is_faster() {
        let rows = run_table10();
        for r in &rows {
            assert!(r.nx[1].mean_ms < r.nx[0].mean_ms, "{}", r.model);
            assert!(r.agx[1].mean_ms < r.agx[0].mean_ms, "{}", r.model);
        }
    }

    #[test]
    fn agx_memcpy_term_is_larger() {
        // The engine upload is the same bytes; the AGX path costs more.
        let rows = run_table10();
        for r in &rows {
            let nx_memcpy = r.nx[0].mean_ms - r.nx[1].mean_ms;
            let agx_memcpy = r.agx[0].mean_ms - r.agx[1].mean_ms;
            assert!(
                agx_memcpy > nx_memcpy * 0.95,
                "{}: {} vs {}",
                r.model,
                agx_memcpy,
                nx_memcpy
            );
        }
    }

    #[test]
    fn some_kernels_slower_on_agx() {
        // The paper's Table XI finds such kernels in pednet/facenet/mobilenet.
        let rows = run_table11(&[ModelId::Pednet, ModelId::Facenet, ModelId::Mobilenetv1]);
        assert!(
            !rows.is_empty(),
            "no kernel ran slower on AGX — the L2-share mechanism is dead"
        );
        for r in &rows {
            assert!(r.agx_ms > r.nx_ms);
        }
    }

    #[test]
    fn trace_timeline_contains_upload_spike_and_frames() {
        let runs = 8;
        let tl = memcpy_trace_timeline(ModelId::Resnet18, Platform::Agx, runs);
        // One upload + one input copy per run on the H2D side.
        let h2d: Vec<_> = tl
            .memcpys()
            .iter()
            .filter(|m| m.kind == trtsim_gpu::timeline::CopyKind::HostToDevice)
            .collect();
        assert_eq!(h2d.len(), runs + 1);
        let upload = &h2d[0];
        assert!(
            h2d[1..].iter().all(|m| upload.bytes > m.bytes),
            "plan upload must dwarf per-frame input copies"
        );
    }

    #[test]
    fn tables_render() {
        let s10 = render_table10(&run_table10()[..1]);
        assert!(s10.contains("memcpy incl."));
        let s11 = render_table11(&run_table11(&[ModelId::Pednet]));
        assert!(s11.contains("Kernel"));
    }
}
