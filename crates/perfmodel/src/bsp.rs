//! Equation 2: the BSP kernel-time model.

use trtsim_gpu::device::{DeviceSpec, MemLatencies};
use trtsim_gpu::kernel::KernelDesc;

/// Hardware parameters the BSP model needs, obtained from micro-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspParams {
    /// Memory-access latencies in cycles (LSM, LL1, LL2, LGM).
    pub latencies: MemLatencies,
    /// Cycles per arithmetic instruction (issue + dependency average).
    pub cycles_per_instr: f64,
}

impl BspParams {
    /// Textbook Volta values (no measurement noise); micro-benchmarks add
    /// realistic jitter on top of these.
    pub fn nominal(device: &DeviceSpec) -> Self {
        Self {
            latencies: device.latency_cycles(),
            cycles_per_instr: 4.0,
        }
    }
}

/// Raw Eq. 2 prediction with λ = 1, in µs.
///
/// `Comp` is the per-thread arithmetic cost, `CommSM` the shared-memory cost,
/// and `CommGM` the global-memory cost split by the kernel's L2 hit fraction;
/// the denominator is core throughput `F · C`.
pub fn predict_raw_us(kernel: &KernelDesc, device: &DeviceSpec, params: &BspParams) -> f64 {
    let n = kernel.total_threads() as f64;
    let comp = kernel.ops_per_thread() * params.cycles_per_instr;
    let comm_sm = kernel.shared_words_per_thread() * params.latencies.shared;
    let global_words = kernel.global_words_per_thread();
    let l2_fraction = kernel.l2_hit_fraction();
    let comm_gm = global_words
        * (l2_fraction * params.latencies.l2 + (1.0 - l2_fraction) * params.latencies.global);
    let cycles = n * (comp + comm_sm + comm_gm);
    // F in cycles/µs, C cores.
    cycles / (device.gpu_clock_mhz * f64::from(device.cuda_cores()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_gpu::kernel::Precision;

    fn kernel() -> KernelDesc {
        KernelDesc::new("k")
            .grid(48, 256)
            .flops(100_000_000)
            .dram_bytes(4 << 20)
            .l2_bytes(16 << 20)
            .shared_bytes(8 << 20)
            .precision(Precision::Fp16, true)
    }

    #[test]
    fn prediction_is_positive_and_finite() {
        let dev = DeviceSpec::xavier_nx();
        let t = predict_raw_us(&kernel(), &dev, &BspParams::nominal(&dev));
        assert!(t.is_finite() && t > 0.0);
    }

    #[test]
    fn more_cores_predict_faster() {
        let nx = DeviceSpec::xavier_nx();
        let agx = DeviceSpec::xavier_agx();
        let p = BspParams::nominal(&nx);
        assert!(predict_raw_us(&kernel(), &agx, &p) < predict_raw_us(&kernel(), &nx, &p));
    }

    #[test]
    fn higher_clock_predicts_faster() {
        let full = DeviceSpec::xavier_nx();
        let slow = full.clone().with_clock_mhz(599.0);
        let p = BspParams::nominal(&full);
        assert!(predict_raw_us(&kernel(), &full, &p) < predict_raw_us(&kernel(), &slow, &p));
    }

    #[test]
    fn l2_hits_cheaper_than_dram() {
        let dev = DeviceSpec::xavier_nx();
        let p = BspParams::nominal(&dev);
        let cached = kernel().dram_bytes(0).l2_bytes(20 << 20);
        let uncached = kernel().dram_bytes(20 << 20).l2_bytes(0);
        assert!(predict_raw_us(&cached, &dev, &p) < predict_raw_us(&uncached, &dev, &p));
    }

    #[test]
    fn memory_free_kernel_is_compute_term_only() {
        let dev = DeviceSpec::xavier_nx();
        let p = BspParams::nominal(&dev);
        let k = KernelDesc::new("k").grid(6, 256).flops(1_000_000);
        let expected = k.total_threads() as f64 * k.ops_per_thread() * p.cycles_per_instr
            / (dev.gpu_clock_mhz * f64::from(dev.cuda_cores()));
        assert!((predict_raw_us(&k, &dev, &p) - expected).abs() < 1e-9);
    }
}
