//! Micro-benchmarks that "measure" the BSP model's hardware parameters.
//!
//! The paper: "We use microbenchmarks to obtain the static hardware
//! parameters such as LSM, LGM, LL1 and LL2 for our experimental hardwares."
//! On the simulator, a micro-benchmark is a measurement of the device's true
//! latency constants through the same noisy-measurement channel the
//! autotuner uses — so two calibration runs produce slightly different
//! parameter sets, exactly like pointer-chase benchmarks on real silicon.

use trtsim_gpu::device::{DeviceSpec, MemLatencies};
use trtsim_util::rng::Pcg32;

use crate::bsp::BspParams;

/// Relative measurement noise of one latency micro-benchmark run.
const MICROBENCH_NOISE_SD: f64 = 0.03;

/// Runs the micro-benchmark suite on a device.
pub fn measure_params(device: &DeviceSpec, seed: u64) -> BspParams {
    let mut rng = Pcg32::seed_from_u64(seed);
    let t = device.latency_cycles();
    let mut jitter = |x: f64| x * (1.0 + MICROBENCH_NOISE_SD * rng.normal()).max(0.5);
    BspParams {
        latencies: MemLatencies {
            shared: jitter(t.shared),
            l1: jitter(t.l1),
            l2: jitter(t.l2),
            global: jitter(t.global),
        },
        cycles_per_instr: jitter(4.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_near_truth() {
        let dev = DeviceSpec::xavier_nx();
        let p = measure_params(&dev, 1);
        let t = dev.latency_cycles();
        assert!((p.latencies.global - t.global).abs() / t.global < 0.15);
        assert!((p.latencies.shared - t.shared).abs() / t.shared < 0.15);
    }

    #[test]
    fn repeated_runs_differ_slightly() {
        let dev = DeviceSpec::xavier_nx();
        let a = measure_params(&dev, 1);
        let b = measure_params(&dev, 2);
        assert_ne!(a.latencies.global, b.latencies.global);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let dev = DeviceSpec::xavier_agx();
        assert_eq!(measure_params(&dev, 7), measure_params(&dev, 7));
    }

    #[test]
    fn ordering_of_memory_levels_preserved() {
        let dev = DeviceSpec::xavier_nx();
        for seed in 0..20 {
            let p = measure_params(&dev, seed);
            assert!(p.latencies.shared < p.latencies.l2);
            assert!(p.latencies.l2 < p.latencies.global);
        }
    }
}
