//! BSP-style micro-architecture performance prediction (paper §VI-B).
//!
//! The paper adopts the Bulk Synchronous Parallel GPU model of \[56\]:
//!
//! ```text
//! T = N · (Comp + CommGM + CommSM) / (F · C · λ)     (Eq. 2)
//! ```
//!
//! with per-kernel λ calibrated on one platform and reused on another. The
//! paper's point is that the optimization engine breaks this workflow: every
//! TensorRT build maps the network to a *different* set of kernels with
//! different invocation counts, so λs calibrated against one engine do not
//! transfer even to another engine of the same model on the same hardware —
//! prediction error swings by 2–13 % across builds (Tables XVII/XVIII).
//! This crate implements the model, its micro-benchmarks, λ calibration, and
//! the cross-platform prediction experiment.

#![warn(missing_docs)]

pub mod bsp;
pub mod lambda;
pub mod learned;
pub mod microbench;

pub use bsp::{predict_raw_us, BspParams};
pub use lambda::{predict_engine_us, LambdaTable, PredictionOutcome};
pub use learned::{bsp_cross_build_error_percent, LatencyModel, PredictedLatency, QueueSignals};
pub use microbench::measure_params;
