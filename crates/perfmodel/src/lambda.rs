//! λ calibration and cross-platform prediction (the Tables XVII/XVIII
//! experiment).
//!
//! Following \[56\], λ for each kernel is the ratio between the raw Eq. 2
//! prediction and the measured execution time on a calibration platform; the
//! same λ is then reused to predict the kernel on another platform with the
//! same microarchitecture. The application's predicted time is
//! `Σ T_kernel · invocations`.

use std::collections::BTreeMap;

use trtsim_core::engine::Engine;
use trtsim_gpu::device::DeviceSpec;
use trtsim_gpu::timing::kernel_busy_us;
use trtsim_util::rng::Pcg32;

use crate::bsp::{predict_raw_us, BspParams};

/// Per-kernel-symbol λ values calibrated on one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaTable {
    entries: BTreeMap<String, f64>,
}

impl LambdaTable {
    /// Calibrates λ for every kernel of `engine` by "measuring" it on
    /// `device` (the simulator's timing model plus measurement noise).
    pub fn calibrate(
        engine: &Engine,
        device: &DeviceSpec,
        params: &BspParams,
        measurement_seed: u64,
    ) -> Self {
        let mut rng = Pcg32::seed_from_u64(measurement_seed);
        let mut entries = BTreeMap::new();
        for unit in engine.units() {
            let Some(choice) = &unit.choice else {
                continue;
            };
            let raw = predict_raw_us(&choice.kernel, device, params);
            let measured =
                kernel_busy_us(&choice.kernel, device).max(1e-6) * (1.0 + 0.02 * rng.normal());
            // Average λ across invocations of the same symbol.
            let lambda = raw / measured;
            entries
                .entry(choice.kernel.name.clone())
                .and_modify(|l: &mut f64| *l = (*l + lambda) / 2.0)
                .or_insert(lambda);
        }
        Self { entries }
    }

    /// λ for a kernel symbol.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.entries.get(name).copied()
    }

    /// Number of distinct kernel symbols calibrated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no kernels were calibrated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(symbol, λ)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

/// Predicted execution time of one inference of `engine` on `device`, µs,
/// using λs from a (possibly different) engine's calibration. Kernels with
/// no λ — possible because another build mapped to different kernels — fall
/// back to λ = 1, degrading the prediction exactly as the paper describes.
pub fn predict_engine_us(
    engine: &Engine,
    device: &DeviceSpec,
    params: &BspParams,
    lambdas: &LambdaTable,
) -> f64 {
    engine
        .units()
        .iter()
        .filter_map(|u| u.choice.as_ref())
        .map(|c| {
            let raw = predict_raw_us(&c.kernel, device, params);
            raw / lambdas.get(&c.kernel.name).unwrap_or(1.0)
        })
        .sum()
}

/// The full Tables XVII/XVIII experiment for one engine: calibrate on NX,
/// predict on AGX, compare against the simulated AGX execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionOutcome {
    /// Number of λ entries used.
    pub lambda_count: usize,
    /// Predicted AGX time, µs.
    pub predicted_us: f64,
    /// Simulated AGX time, µs.
    pub actual_us: f64,
}

impl PredictionOutcome {
    /// Runs the experiment.
    pub fn evaluate(
        engine: &Engine,
        calibration_device: &DeviceSpec,
        target_device: &DeviceSpec,
        seed: u64,
    ) -> Self {
        let params = crate::microbench::measure_params(calibration_device, seed);
        let lambdas = LambdaTable::calibrate(engine, calibration_device, &params, seed ^ 0xabc);
        let predicted_us = predict_engine_us(engine, target_device, &params, &lambdas);
        let actual_us: f64 = engine
            .units()
            .iter()
            .filter_map(|u| u.choice.as_ref())
            .map(|c| kernel_busy_us(&c.kernel, target_device))
            .sum();
        Self {
            lambda_count: lambdas.len(),
            predicted_us,
            actual_us,
        }
    }

    /// Absolute prediction error in percent.
    pub fn error_percent(&self) -> f64 {
        100.0 * (self.predicted_us - self.actual_us).abs() / self.actual_us.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_core::{Builder, BuilderConfig};
    use trtsim_ir::graph::{Graph, LayerKind, PoolKind};

    fn engine(seed: u64) -> Engine {
        let mut g = Graph::new("bsp_test", [16, 64, 64]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(96, 16, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let p = g.add_layer(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(128, 96, 3, 1, 1, 1), &[p]);
        let c3 = g.add_layer("c3", LayerKind::conv_seeded(64, 128, 1, 1, 0, 2), &[c2]);
        g.mark_output(c3);
        Builder::new(
            DeviceSpec::pinned_clock(trtsim_gpu::device::Platform::Nx),
            BuilderConfig::default().with_build_seed(seed),
        )
        .build(&g)
        .unwrap()
    }

    #[test]
    fn calibration_covers_all_kernels() {
        let e = engine(1);
        let dev = DeviceSpec::xavier_nx();
        let params = BspParams::nominal(&dev);
        let t = LambdaTable::calibrate(&e, &dev, &params, 0);
        assert!(!t.is_empty());
        for name in e.kernel_names() {
            assert!(t.get(&name).is_some(), "missing λ for {name}");
        }
    }

    #[test]
    fn self_prediction_is_nearly_exact() {
        // Calibrating and predicting on the same platform with the same
        // engine should land within measurement noise.
        let e = engine(2);
        let dev = DeviceSpec::xavier_nx();
        let params = BspParams::nominal(&dev);
        let t = LambdaTable::calibrate(&e, &dev, &params, 3);
        let predicted = predict_engine_us(&e, &dev, &params, &t);
        let actual: f64 = e
            .units()
            .iter()
            .filter_map(|u| u.choice.as_ref())
            .map(|c| kernel_busy_us(&c.kernel, &dev))
            .sum();
        let err = (predicted - actual).abs() / actual;
        assert!(err < 0.10, "self-prediction error {err:.3}");
    }

    #[test]
    fn cross_platform_prediction_has_error() {
        let e = engine(3);
        let outcome = PredictionOutcome::evaluate(
            &e,
            &DeviceSpec::pinned_clock(trtsim_gpu::device::Platform::Nx),
            &DeviceSpec::pinned_clock(trtsim_gpu::device::Platform::Agx),
            5,
        );
        assert!(outcome.predicted_us > 0.0);
        assert!(outcome.error_percent() < 100.0);
    }

    #[test]
    fn error_varies_across_engine_builds() {
        // The paper's headline: λs from one build do not transfer cleanly;
        // prediction error changes 2-13% across engines of the same model.
        let nx = DeviceSpec::pinned_clock(trtsim_gpu::device::Platform::Nx);
        let agx = DeviceSpec::pinned_clock(trtsim_gpu::device::Platform::Agx);
        let errors: Vec<f64> = (0..6)
            .map(|s| PredictionOutcome::evaluate(&engine(s), &nx, &agx, s).error_percent())
            .collect();
        let min = errors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = errors.iter().cloned().fold(0.0, f64::max);
        assert!(
            max - min > 0.1,
            "errors suspiciously stable across builds: {errors:?}"
        );
    }

    #[test]
    fn missing_lambdas_fall_back() {
        let e = engine(4);
        let dev = DeviceSpec::xavier_nx();
        let params = BspParams::nominal(&dev);
        let empty = LambdaTable {
            entries: BTreeMap::new(),
        };
        let t = predict_engine_us(&e, &dev, &params, &empty);
        assert!(t > 0.0);
    }
}
