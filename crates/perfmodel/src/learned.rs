//! The learned latency predictor, surfaced next to the analytic BSP model.
//!
//! The online model itself lives in `trtsim-core` (it trains inside the
//! serving and fleet hot paths, which perfmodel sits above); this module
//! re-exports it under the perfmodel roof and adds the comparison the
//! paper's Table XIII argument calls for: how does an *analytic* predictor,
//! calibrated against one build, fare across the builds TensorRT's
//! nondeterministic tactic selection actually produces — versus the learned
//! model, which trains on whatever build is serving and never sees the
//! calibration skew.
//!
//! `bench_serving` reports both numbers side by side: the learned model's
//! prequential MAPE against observed latencies, and the BSP cross-build
//! error spread from [`bsp_cross_build_error_percent`].

pub use trtsim_core::predict::{
    EngineFeatures, LatencyModel, PredictedLatency, QueueSignals, FEATURE_DIM,
};

use trtsim_core::engine::Engine;
use trtsim_core::runtime::{ExecutionContext, TimingOptions};
use trtsim_gpu::device::DeviceSpec;

use crate::bsp::BspParams;
use crate::lambda::{predict_engine_us, LambdaTable};

/// Per-build error of the analytic BSP model under build nondeterminism,
/// percent.
///
/// λs are calibrated once against `engines[0]` (the paper's workflow: one
/// calibration pass on one build), then every engine — including the other
/// builds of the same network — is predicted with those λs and compared to
/// its simulated mean latency. Because each build maps the network onto a
/// different kernel set, the unmatched kernels fall back to λ = 1 and the
/// error swings build to build — the Table XIII effect the learned model
/// sidesteps by training on the serving build itself.
///
/// Returns one absolute-percent error per engine, in input order (the
/// calibration build comes out near its measurement-noise floor).
pub fn bsp_cross_build_error_percent(
    engines: &[Engine],
    device: &DeviceSpec,
    measurement_seed: u64,
) -> Vec<f64> {
    if engines.is_empty() {
        return Vec::new();
    }
    let params = BspParams::nominal(device);
    let lambdas = LambdaTable::calibrate(&engines[0], device, &params, measurement_seed);
    let opts = TimingOptions::default().without_engine_upload();
    engines
        .iter()
        .map(|engine| {
            let predicted_us = predict_engine_us(engine, device, &params, &lambdas);
            let ctx = ExecutionContext::new(engine, device.clone());
            let runs = ctx.measure_latency(&opts, 16, measurement_seed);
            let observed_us = runs.iter().sum::<f64>() / runs.len() as f64;
            ((predicted_us - observed_us) / observed_us.max(1e-9)).abs() * 100.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_core::builder::Builder;
    use trtsim_core::config::BuilderConfig;
    use trtsim_ir::graph::{Graph, LayerKind};

    fn graph() -> Graph {
        let mut g = Graph::new("xbuild", [3, 32, 32]);
        let c1 = g.add_layer(
            "c1",
            LayerKind::conv_seeded(16, 3, 3, 1, 1, 0),
            &[Graph::INPUT],
        );
        let c2 = g.add_layer("c2", LayerKind::conv_seeded(16, 16, 3, 1, 1, 1), &[c1]);
        g.mark_output(c2);
        g
    }

    #[test]
    fn cross_build_error_varies_with_the_build() {
        let device = DeviceSpec::xavier_nx();
        let g = graph();
        let engines: Vec<Engine> = (0..4)
            .map(|seed| {
                Builder::new(
                    device.clone(),
                    BuilderConfig::default().with_build_seed(seed),
                )
                .build(&g)
                .unwrap()
            })
            .collect();
        let errors = bsp_cross_build_error_percent(&engines, &device, 11);
        assert_eq!(errors.len(), 4);
        assert!(errors.iter().all(|e| e.is_finite() && *e >= 0.0));
        // The calibration build must predict at least as well as the worst
        // other build — λ transfer degrades, never improves, off-build.
        let worst_other = errors[1..].iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(
            errors[0] <= worst_other + 1e-9,
            "calibration build {} vs worst other {}",
            errors[0],
            worst_other
        );
    }
}
