//! Latency aggregation and the paper's table-cell formatting.

use trtsim_util::stats::RunningStats;

/// A latency table cell: mean and standard deviation over repeated runs, in
/// milliseconds, printed like the paper's "12.65 (0.05)".
///
/// # Examples
///
/// ```
/// use trtsim_metrics::LatencyCell;
/// let cell = LatencyCell::from_runs_us(&[12_600.0, 12_700.0]);
/// assert_eq!(format!("{cell}"), "12.65 (0.07)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyCell {
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Sample standard deviation, ms.
    pub std_ms: f64,
    /// Number of runs.
    pub runs: usize,
}

impl LatencyCell {
    /// Aggregates per-run latencies given in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `runs_us` is empty.
    pub fn from_runs_us(runs_us: &[f64]) -> Self {
        assert!(!runs_us.is_empty(), "no runs");
        let stats: RunningStats = runs_us.iter().map(|us| us / 1000.0).collect();
        Self {
            mean_ms: stats.mean(),
            std_ms: stats.std_dev(),
            runs: runs_us.len(),
        }
    }
}

impl std::fmt::Display for LatencyCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ({:.2})", self.mean_ms, self.std_ms)
    }
}

/// Frames per second from a mean latency in microseconds.
///
/// # Panics
///
/// Panics if `latency_us` is not positive.
pub fn fps_from_latency_us(latency_us: f64) -> f64 {
    assert!(latency_us > 0.0, "latency must be positive");
    1e6 / latency_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_aggregates_and_formats() {
        let cell = LatencyCell::from_runs_us(&[10_000.0, 12_000.0, 14_000.0]);
        assert!((cell.mean_ms - 12.0).abs() < 1e-9);
        assert_eq!(cell.runs, 3);
        assert!(format!("{cell}").starts_with("12.00 ("));
    }

    #[test]
    fn fps_inverts_latency() {
        assert_eq!(fps_from_latency_us(10_000.0), 100.0);
        assert!((fps_from_latency_us(4_405.0) - 227.0).abs() < 0.5);
    }

    #[test]
    fn single_run_has_zero_std() {
        let cell = LatencyCell::from_runs_us(&[5_000.0]);
        assert_eq!(cell.std_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "latency must be positive")]
    fn zero_latency_rejected() {
        fps_from_latency_us(0.0);
    }
}
