//! Latency aggregation and the paper's table-cell formatting.

use trtsim_util::stats::{percentile_sorted, RunningStats};

/// A latency table cell: mean and standard deviation over repeated runs, in
/// milliseconds, printed like the paper's "12.65 (0.05)".
///
/// # Examples
///
/// ```
/// use trtsim_metrics::LatencyCell;
/// let cell = LatencyCell::from_runs_us(&[12_600.0, 12_700.0]);
/// assert_eq!(format!("{cell}"), "12.65 (0.07)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyCell {
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Sample standard deviation, ms.
    pub std_ms: f64,
    /// Number of runs.
    pub runs: usize,
}

impl LatencyCell {
    /// Aggregates per-run latencies given in microseconds. Zero runs yield a
    /// `runs == 0` cell with NaN mean/σ (rendered as `NaN (NaN)`) rather
    /// than a panic, so table harnesses stay total on empty measurements.
    pub fn from_runs_us(runs_us: &[f64]) -> Self {
        if runs_us.is_empty() {
            return Self {
                mean_ms: f64::NAN,
                std_ms: f64::NAN,
                runs: 0,
            };
        }
        let stats: RunningStats = runs_us.iter().map(|us| us / 1000.0).collect();
        Self {
            mean_ms: stats.mean(),
            std_ms: stats.std_dev(),
            runs: runs_us.len(),
        }
    }
}

impl std::fmt::Display for LatencyCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ({:.2})", self.mean_ms, self.std_ms)
    }
}

/// Per-request latency tail summary, microseconds — what a serving stack
/// reports per endpoint (p50/p90/p99 rather than the paper's mean ± σ table
/// cells, which suit repeated identical runs).
///
/// An empty sample set yields the all-zero summary with `count == 0`, so the
/// invariant `p99 ≥ p90 ≥ p50 ≥ 0` holds unconditionally.
///
/// # Examples
///
/// ```
/// use trtsim_metrics::LatencyPercentiles;
/// let p = LatencyPercentiles::from_runs_us(&[1000.0, 2000.0, 3000.0, 4000.0]);
/// assert_eq!(p.count, 4);
/// assert!(p.p99_us >= p.p90_us && p.p90_us >= p.p50_us);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyPercentiles {
    /// Number of requests observed.
    pub count: usize,
    /// Mean latency, µs.
    pub mean_us: f64,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 90th-percentile latency, µs.
    pub p90_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Worst observed latency, µs.
    pub max_us: f64,
}

impl LatencyPercentiles {
    /// Aggregates per-request latencies given in microseconds. NaN samples
    /// are dropped rather than poisoning the order statistics.
    pub fn from_runs_us(runs_us: &[f64]) -> Self {
        let mut sorted: Vec<f64> = runs_us.iter().copied().filter(|v| !v.is_nan()).collect();
        if sorted.is_empty() {
            return Self::default();
        }
        sorted.sort_by(f64::total_cmp);
        let stats: RunningStats = sorted.iter().copied().collect();
        // The set is non-empty and the percentiles are in range, so the
        // lookups cannot fail; `unwrap_or` keeps the path panic-free anyway.
        let pct = |p: f64| percentile_sorted(&sorted, p).unwrap_or(0.0);
        Self {
            count: sorted.len(),
            mean_us: stats.mean(),
            p50_us: pct(50.0),
            p90_us: pct(90.0),
            p99_us: pct(99.0),
            max_us: stats.max(),
        }
    }
}

impl std::fmt::Display for LatencyPercentiles {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p50 {:.2} ms, p90 {:.2} ms, p99 {:.2} ms (n={})",
            self.p50_us / 1000.0,
            self.p90_us / 1000.0,
            self.p99_us / 1000.0,
            self.count
        )
    }
}

/// Frames per second from a mean latency in microseconds.
///
/// Non-positive or NaN latencies yield NaN instead of panicking — a degraded
/// table cell, not a crashed harness, on an empty or poisoned measurement.
pub fn fps_from_latency_us(latency_us: f64) -> f64 {
    if latency_us.is_nan() || latency_us <= 0.0 {
        return f64::NAN;
    }
    1e6 / latency_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_aggregates_and_formats() {
        let cell = LatencyCell::from_runs_us(&[10_000.0, 12_000.0, 14_000.0]);
        assert!((cell.mean_ms - 12.0).abs() < 1e-9);
        assert_eq!(cell.runs, 3);
        assert!(format!("{cell}").starts_with("12.00 ("));
    }

    #[test]
    fn fps_inverts_latency() {
        assert_eq!(fps_from_latency_us(10_000.0), 100.0);
        assert!((fps_from_latency_us(4_405.0) - 227.0).abs() < 0.5);
    }

    #[test]
    fn single_run_has_zero_std() {
        let cell = LatencyCell::from_runs_us(&[5_000.0]);
        assert_eq!(cell.std_ms, 0.0);
    }

    #[test]
    fn degenerate_latency_yields_nan_not_panic() {
        assert!(fps_from_latency_us(0.0).is_nan());
        assert!(fps_from_latency_us(-3.0).is_nan());
        assert!(fps_from_latency_us(f64::NAN).is_nan());
    }

    #[test]
    fn empty_cell_is_total_not_a_panic() {
        let cell = LatencyCell::from_runs_us(&[]);
        assert_eq!(cell.runs, 0);
        assert!(cell.mean_ms.is_nan());
        assert_eq!(format!("{cell}"), "NaN (NaN)");
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let runs: Vec<f64> = (1..=200).map(|i| i as f64 * 50.0).collect();
        let p = LatencyPercentiles::from_runs_us(&runs);
        assert_eq!(p.count, 200);
        assert!(p.p50_us >= 0.0);
        assert!(p.p90_us >= p.p50_us);
        assert!(p.p99_us >= p.p90_us);
        assert!(p.max_us >= p.p99_us);
        assert!((p.p50_us - 5025.0).abs() < 1.0, "p50 {}", p.p50_us);
    }

    #[test]
    fn empty_and_nan_runs_are_harmless() {
        let empty = LatencyPercentiles::from_runs_us(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99_us, 0.0);
        let filtered = LatencyPercentiles::from_runs_us(&[f64::NAN, 10.0]);
        assert_eq!(filtered.count, 1);
        assert_eq!(filtered.p50_us, 10.0);
    }

    #[test]
    fn percentiles_render_in_ms() {
        let p = LatencyPercentiles::from_runs_us(&[1000.0, 3000.0]);
        let s = format!("{p}");
        assert!(
            s.contains("p50") && s.contains("p99") && s.contains("n=2"),
            "{s}"
        );
    }
}
