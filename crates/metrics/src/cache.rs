//! Hit/miss accounting for the build pipeline's memoization layers.
//!
//! The timing cache in `trtsim-core` (a simulator analog of TensorRT's
//! `ITimingCache`) and the engine farm in `trtsim-repro` both report their
//! effectiveness through this one snapshot type, so harnesses and benches
//! print cache behaviour the same way they print latency cells.

/// A point-in-time snapshot of a cache's hit/miss counters.
///
/// # Examples
///
/// ```
/// use trtsim_metrics::CacheStats;
/// let stats = CacheStats { hits: 30, misses: 10 };
/// assert_eq!(stats.lookups(), 40);
/// assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
/// assert_eq!(format!("{stats}"), "30 hits / 10 misses (75.0% hit rate)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then populate) the entry.
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache; 0 when nothing was looked
    /// up yet.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Counter-wise difference versus an earlier snapshot (for measuring one
    /// phase of a longer run). Saturates at zero if `earlier` is not actually
    /// earlier.
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate)",
            self.hits,
            self.misses,
            100.0 * self.hit_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_safe() {
        let s = CacheStats::default();
        assert_eq!(s.lookups(), 0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn since_subtracts_per_counter() {
        let early = CacheStats { hits: 5, misses: 3 };
        let late = CacheStats {
            hits: 25,
            misses: 4,
        };
        assert_eq!(
            late.since(early),
            CacheStats {
                hits: 20,
                misses: 1
            }
        );
        assert_eq!(early.since(late), CacheStats::default());
    }

    #[test]
    fn display_matches_paper_style_reporting() {
        let s = CacheStats { hits: 1, misses: 2 };
        assert!(format!("{s}").contains("33.3%"));
    }
}
