//! Object-detection precision/recall at an IoU threshold.
//!
//! The paper: "IOU of 0.5 is traditionally considered a true positive, with
//! precision increasing as IOU tends towards 1. We report precision and
//! recall values corresponding to IOU 0.75."

use trtsim_data::traffic::BBox;

/// Aggregated detection outcome over a test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DetectionEval {
    /// Predictions matched to ground truth at the threshold.
    pub true_positives: usize,
    /// Predictions with no matching ground truth.
    pub false_positives: usize,
    /// Ground truths with no matching prediction.
    pub false_negatives: usize,
}

impl DetectionEval {
    /// Precision: TP / (TP + FP); 1.0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall: TP / (TP + FN); 1.0 when there was nothing to find.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Accumulates another image's outcome.
    pub fn merge(&mut self, other: &DetectionEval) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
    }
}

/// Greedy one-to-one matching of predictions to ground truth at the IoU
/// threshold; classes must also match.
///
/// Predictions are taken in the given order (callers sort by confidence);
/// each ground-truth box matches at most one prediction.
pub fn precision_recall(
    predictions: &[BBox],
    ground_truth: &[BBox],
    iou_threshold: f32,
) -> DetectionEval {
    let mut matched = vec![false; ground_truth.len()];
    let mut eval = DetectionEval::default();
    for pred in predictions {
        let mut best: Option<(usize, f32)> = None;
        for (i, gt) in ground_truth.iter().enumerate() {
            if matched[i] || gt.class != pred.class {
                continue;
            }
            let iou = pred.iou(gt);
            if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                best = Some((i, iou));
            }
        }
        match best {
            Some((i, _)) => {
                matched[i] = true;
                eval.true_positives += 1;
            }
            None => eval.false_positives += 1,
        }
    }
    eval.false_negatives = matched.iter().filter(|&&m| !m).count();
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use trtsim_data::traffic::VehicleClass;

    fn car(x: f32, y: f32, w: f32, h: f32) -> BBox {
        BBox {
            x,
            y,
            w,
            h,
            class: VehicleClass::Car,
        }
    }

    #[test]
    fn perfect_detection() {
        let gt = [car(0.0, 0.0, 10.0, 10.0), car(50.0, 50.0, 8.0, 8.0)];
        let eval = precision_recall(&gt, &gt, 0.75);
        assert_eq!(eval.true_positives, 2);
        assert_eq!(eval.precision(), 1.0);
        assert_eq!(eval.recall(), 1.0);
    }

    #[test]
    fn shifted_box_fails_at_high_iou_passes_at_low() {
        let gt = [car(0.0, 0.0, 10.0, 10.0)];
        let pred = [car(2.0, 0.0, 10.0, 10.0)]; // IoU = 8/12 ≈ 0.667
        let strict = precision_recall(&pred, &gt, 0.75);
        assert_eq!(strict.true_positives, 0);
        assert_eq!(strict.false_positives, 1);
        let loose = precision_recall(&pred, &gt, 0.5);
        assert_eq!(loose.true_positives, 1);
    }

    #[test]
    fn class_mismatch_is_false_positive() {
        let gt = [car(0.0, 0.0, 10.0, 10.0)];
        let pred = [BBox {
            class: VehicleClass::Bus,
            ..gt[0]
        }];
        let eval = precision_recall(&pred, &gt, 0.5);
        assert_eq!(eval.true_positives, 0);
        assert_eq!(eval.false_positives, 1);
        assert_eq!(eval.false_negatives, 1);
    }

    #[test]
    fn each_gt_matches_once() {
        let gt = [car(0.0, 0.0, 10.0, 10.0)];
        let pred = [car(0.0, 0.0, 10.0, 10.0), car(0.5, 0.0, 10.0, 10.0)];
        let eval = precision_recall(&pred, &gt, 0.5);
        assert_eq!(eval.true_positives, 1);
        assert_eq!(eval.false_positives, 1);
    }

    #[test]
    fn missed_boxes_are_false_negatives() {
        let gt = [car(0.0, 0.0, 10.0, 10.0), car(30.0, 30.0, 10.0, 10.0)];
        let pred = [car(0.0, 0.0, 10.0, 10.0)];
        let eval = precision_recall(&pred, &gt, 0.75);
        assert_eq!(eval.false_negatives, 1);
        assert_eq!(eval.recall(), 0.5);
    }

    #[test]
    fn empty_cases() {
        let eval = precision_recall(&[], &[], 0.75);
        assert_eq!(eval.precision(), 1.0);
        assert_eq!(eval.recall(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DetectionEval {
            true_positives: 1,
            false_positives: 2,
            false_negatives: 3,
        };
        a.merge(&a.clone());
        assert_eq!(a.true_positives, 2);
        assert_eq!(a.false_negatives, 6);
    }
}
