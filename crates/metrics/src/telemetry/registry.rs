//! The metric registry and its lock-free series handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Metric kind, fixed at first registration of a family name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing `u64` counter handle.
///
/// Cloning is cheap (an `Arc` bump); every clone updates the same series.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge handle (stored as bit-cast atomics).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (CAS loop; gauges are not hot-path metrics).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared state behind a [`Histogram`] handle.
/// One optional `(trace_id, value)` exemplar slot per histogram bucket.
pub(crate) type ExemplarSlots = Box<[Option<(String, f64)>]>;

#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Finite upper bounds, strictly increasing. The implicit final bucket
    /// is `+Inf`.
    pub(crate) bounds: Arc<[f64]>,
    /// One counter per finite bound plus the overflow bucket
    /// (`len == bounds.len() + 1`). Non-cumulative.
    pub(crate) buckets: Box<[AtomicU64]>,
    /// Sum of observed values, as `f64` bits.
    pub(crate) sum_bits: AtomicU64,
    /// Total number of observations.
    pub(crate) count: AtomicU64,
    /// Per-bucket OpenMetrics exemplars (`trace_id`, observed value), one
    /// slot per bucket, latest-wins. Behind a mutex: exemplars are only
    /// attached for retained traces (rare), never on the plain hot path.
    pub(crate) exemplars: Mutex<ExemplarSlots>,
}

/// A bounded log-bucket histogram handle.
///
/// Observations land in the first bucket whose upper bound is `>= value`;
/// quantile estimates report that upper bound, so the estimate is exact to
/// within one bucket's width (one growth factor for [`log_buckets`]).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation. Lock-free: a binary search over the bounds
    /// plus three relaxed atomic updates.
    pub fn observe(&self, value: f64) {
        let core = &self.0;
        let idx = core.bounds.partition_point(|b| *b < value);
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match core.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records one observation and attaches an OpenMetrics exemplar — a
    /// `trace_id` pointing at a retained flight-recorder trace — to the
    /// bucket the value lands in (latest exemplar wins). Costs one short
    /// mutex hold on top of [`observe`]; call it only for the minority of
    /// observations that actually have a retained trace behind them.
    ///
    /// [`observe`]: Histogram::observe
    pub fn observe_with_exemplar(&self, value: f64, trace_id: &str) {
        self.observe(value);
        let core = &self.0;
        let idx = core.bounds.partition_point(|b| *b < value);
        let mut slots = core.exemplars.lock().expect("exemplars poisoned");
        slots[idx] = Some((trace_id.to_string(), value));
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Quantile estimate: the upper bound of the bucket containing the
    /// `q`-quantile observation (`0.0 ..= 1.0`). Returns `NaN` when empty;
    /// observations past the last finite bound report that last bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let core = &self.0;
        let counts: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return f64::NAN;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return if i < core.bounds.len() {
                    core.bounds[i]
                } else {
                    *core.bounds.last().expect("histograms have >= 1 bound")
                };
            }
        }
        unreachable!("rank <= total")
    }
}

/// Builds `count` log-spaced histogram bounds: `start, start*growth, ...`.
///
/// # Panics
///
/// Panics unless `start > 0`, `growth > 1`, and `count >= 1`.
pub fn log_buckets(start: f64, growth: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0, "log_buckets: start must be positive");
    assert!(growth > 1.0, "log_buckets: growth must exceed 1");
    assert!(count >= 1, "log_buckets: need at least one bucket");
    let mut bounds = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        bounds.push(b);
        b *= growth;
    }
    bounds
}

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCore>),
}

#[derive(Debug)]
struct Family {
    kind: Kind,
    help: String,
    /// Histogram families share one bound set across all label series.
    bounds: Option<Arc<[f64]>>,
    series: BTreeMap<Vec<(String, String)>, Series>,
}

/// A process-wide (or test-local) collection of metric families.
///
/// Names follow the Prometheus convention `[a-zA-Z_:][a-zA-Z0-9_:]*`; label
/// names `[a-zA-Z_][a-zA-Z0-9_]*`. Registration panics on invalid names or
/// on re-registering a family under a different kind — both are programmer
/// errors, not runtime conditions.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Family>>,
}

impl Registry {
    /// An empty registry (for tests or scoped collection).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry used by the instrumented subsystems.
    pub fn global() -> &'static Arc<Registry> {
        static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(Registry::new()))
    }

    /// Finds or creates the counter `name{labels}`.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let series = self.series(name, help, labels, Kind::Counter, None);
        match series {
            Series::Counter(c) => Counter(c),
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Finds or creates the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let series = self.series(name, help, labels, Kind::Gauge, None);
        match series {
            Series::Gauge(g) => Gauge(g),
            _ => unreachable!("kind checked in series()"),
        }
    }

    /// Finds or creates the histogram `name{labels}` with the given finite
    /// bucket bounds (strictly increasing; an `+Inf` bucket is implicit).
    /// All series of one family share the bounds of the first registration.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        assert!(
            !bounds.is_empty() && bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram {name}: bounds must be non-empty and strictly increasing"
        );
        let series = self.series(name, help, labels, Kind::Histogram, Some(bounds));
        match series {
            Series::Histogram(h) => Histogram(h),
            _ => unreachable!("kind checked in series()"),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        bounds: Option<&[f64]>,
    ) -> Series {
        validate_name(name);
        let mut key: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| {
                validate_label(name, k);
                (k.to_string(), v.to_string())
            })
            .collect();
        key.sort();
        key.dedup_by(|a, b| a.0 == b.0);
        let mut inner = self.inner.lock().expect("registry poisoned");
        let family = inner.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            bounds: bounds.map(Arc::from),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric {name} already registered as a {}",
            family.kind.as_str()
        );
        let family_bounds = family.bounds.clone();
        family
            .series
            .entry(key)
            .or_insert_with(|| match kind {
                Kind::Counter => Series::Counter(Arc::new(AtomicU64::new(0))),
                Kind::Gauge => Series::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
                Kind::Histogram => {
                    let bounds = family_bounds.expect("histogram family carries bounds");
                    let buckets = (0..bounds.len() + 1)
                        .map(|_| AtomicU64::new(0))
                        .collect::<Vec<_>>()
                        .into_boxed_slice();
                    let exemplars = vec![None; bounds.len() + 1].into_boxed_slice();
                    Series::Histogram(Arc::new(HistogramCore {
                        bounds,
                        buckets,
                        sum_bits: AtomicU64::new(0f64.to_bits()),
                        count: AtomicU64::new(0),
                        exemplars: Mutex::new(exemplars),
                    }))
                }
            })
            .clone_handle()
    }

    /// A point-in-time copy of every family and series, for the exporters.
    pub(crate) fn snapshot(&self) -> Vec<FamilySnapshot> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .iter()
            .map(|(name, family)| FamilySnapshot {
                name: name.clone(),
                kind: family.kind,
                help: family.help.clone(),
                series: family
                    .series
                    .iter()
                    .map(|(labels, series)| SeriesSnapshot {
                        labels: labels.clone(),
                        value: match series {
                            Series::Counter(c) => SeriesValue::Counter(c.load(Ordering::Relaxed)),
                            Series::Gauge(g) => {
                                SeriesValue::Gauge(f64::from_bits(g.load(Ordering::Relaxed)))
                            }
                            Series::Histogram(h) => SeriesValue::Histogram {
                                bounds: h.bounds.to_vec(),
                                buckets: h
                                    .buckets
                                    .iter()
                                    .map(|b| b.load(Ordering::Relaxed))
                                    .collect(),
                                sum: f64::from_bits(h.sum_bits.load(Ordering::Relaxed)),
                                count: h.count.load(Ordering::Relaxed),
                                exemplars: h.exemplars.lock().expect("exemplars poisoned").to_vec(),
                            },
                        },
                    })
                    .collect(),
            })
            .collect()
    }
}

impl Series {
    fn clone_handle(&self) -> Series {
        match self {
            Series::Counter(c) => Series::Counter(Arc::clone(c)),
            Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
            Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
        }
    }
}

#[derive(Debug)]
pub(crate) struct FamilySnapshot {
    pub(crate) name: String,
    pub(crate) kind: Kind,
    pub(crate) help: String,
    pub(crate) series: Vec<SeriesSnapshot>,
}

#[derive(Debug)]
pub(crate) struct SeriesSnapshot {
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) value: SeriesValue,
}

#[derive(Debug)]
pub(crate) enum SeriesValue {
    Counter(u64),
    Gauge(f64),
    Histogram {
        bounds: Vec<f64>,
        buckets: Vec<u64>,
        sum: f64,
        count: u64,
        /// One optional `(trace_id, value)` exemplar per bucket.
        exemplars: Vec<Option<(String, f64)>>,
    },
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
    assert!(ok, "invalid metric name {name:?}");
}

fn validate_label(metric: &str, label: &str) {
    let mut chars = label.chars();
    let ok = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_');
    assert!(
        ok && label != "le",
        "invalid label name {label:?} on {metric}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let reg = Registry::new();
        let a = reg.counter("t_total", "help", &[]);
        let b = reg.counter("t_total", "help", &[]);
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn labels_create_distinct_series_order_insensitive() {
        let reg = Registry::new();
        let x = reg.counter("t_total", "h", &[("model", "a"), ("dev", "nx")]);
        let y = reg.counter("t_total", "h", &[("dev", "nx"), ("model", "a")]);
        let z = reg.counter("t_total", "h", &[("model", "b"), ("dev", "nx")]);
        x.inc();
        assert_eq!(y.get(), 1, "label order must not split a series");
        assert_eq!(z.get(), 0);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("g", "h", &[]);
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("h_us", "h", &[], &log_buckets(1.0, 2.0, 10));
        for v in [0.5, 3.0, 3.0, 100.0, 1e9] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.sum() - (0.5 + 3.0 + 3.0 + 100.0 + 1e9)).abs() < 1.0);
        assert_eq!(h.quantile(0.5), 4.0, "two 3.0s land in the (2,4] bucket");
        // 1e9 overflows the last finite bound (512) and reports it.
        assert_eq!(h.quantile(1.0), 512.0);
        assert!(reg.histogram("h_us", "h", &[], &[1.0]).quantile(0.5) == 4.0);
    }

    #[test]
    fn exemplar_lands_in_the_observed_bucket_latest_wins() {
        let reg = Registry::new();
        let h = reg.histogram("h_us", "h", &[], &log_buckets(1.0, 2.0, 4));
        h.observe_with_exemplar(3.0, "aaaa");
        h.observe_with_exemplar(3.5, "bbbb");
        h.observe(100.0); // plain observe never writes an exemplar
        assert_eq!(h.count(), 3);
        let slots = h.0.exemplars.lock().unwrap();
        // 3.0 and 3.5 land in the (2,4] bucket (index 2); latest wins.
        assert_eq!(slots[2], Some(("bbbb".to_string(), 3.5)));
        assert!(slots.iter().enumerate().all(|(i, s)| i == 2 || s.is_none()));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", "h", &[]);
        reg.gauge("m", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        Registry::new().counter("9bad", "h", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn reserved_le_label_panics() {
        Registry::new().counter("m_total", "h", &[("le", "1")]);
    }

    #[test]
    fn log_buckets_shape() {
        assert_eq!(log_buckets(1.0, 2.0, 4), vec![1.0, 2.0, 4.0, 8.0]);
    }
}
