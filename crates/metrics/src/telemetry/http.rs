//! A std-only TCP scrape endpoint serving the exposition formats.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use super::export::{render_json, render_prometheus};
use super::registry::Registry;

/// An extra route table for [`TelemetryServer::bind_with_routes`]: given a
/// request path, returns `Some((content_type, body))` to serve it, or `None`
/// to fall through to the 404. Lets subsystems the metrics crate cannot
/// depend on (the flight recorder lives in `trtsim-core`) expose endpoints
/// like `GET /traces` on the same scrape port.
pub type RouteHandler = Arc<dyn Fn(&str) -> Option<(String, String)> + Send + Sync>;

/// A minimal HTTP/1.1 endpoint exposing a [`Registry`]:
///
/// * `GET /metrics` — Prometheus text exposition
/// * `GET /metrics.json` — JSON snapshot
/// * any extra routes installed via [`bind_with_routes`]
///
/// One accept-loop thread, one connection at a time, `Connection: close` —
/// exactly enough for a scraper, with no dependency beyond `std`. The
/// listener shuts down when the handle is dropped (or [`shutdown`] is
/// called explicitly).
///
/// [`shutdown`]: TelemetryServer::shutdown
/// [`bind_with_routes`]: TelemetryServer::bind_with_routes
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (port 0 picks a free port; see [`local_addr`]) and starts
    /// serving `registry` on a background thread.
    ///
    /// [`local_addr`]: TelemetryServer::local_addr
    pub fn bind(addr: SocketAddr, registry: Arc<Registry>) -> std::io::Result<Self> {
        Self::bind_inner(addr, registry, None)
    }

    /// Like [`bind`], but consults `routes` for any path the built-in
    /// endpoints do not handle before answering 404.
    ///
    /// [`bind`]: TelemetryServer::bind
    pub fn bind_with_routes(
        addr: SocketAddr,
        registry: Arc<Registry>,
        routes: RouteHandler,
    ) -> std::io::Result<Self> {
        Self::bind_inner(addr, registry, Some(routes))
    }

    fn bind_inner(
        addr: SocketAddr,
        registry: Arc<Registry>,
        routes: Option<RouteHandler>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("telemetry-http".into())
            .spawn(move || accept_loop(listener, &registry, routes.as_ref(), &stop_flag))
            .expect("spawn telemetry thread");
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection. The loop
        // re-checks the stop flag before serving it.
        let poke = if self.addr.ip().is_unspecified() {
            SocketAddr::new(std::net::Ipv4Addr::LOCALHOST.into(), self.addr.port())
        } else {
            self.addr
        };
        let _ = TcpStream::connect_timeout(&poke, Duration::from_millis(200));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: &Registry,
    routes: Option<&RouteHandler>,
    stop: &AtomicBool,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // A slow or stuck client must not wedge the scrape endpoint.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = serve_one(stream, registry, routes);
    }
}

fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    routes: Option<&RouteHandler>,
) -> std::io::Result<()> {
    let path = read_request_path(&mut stream)?;
    let (status, content_type, body) = match path.as_deref() {
        Some("/metrics") | Some("/") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8".to_string(),
            render_prometheus(registry),
        ),
        Some("/metrics.json") => (
            "200 OK",
            "application/json".to_string(),
            render_json(registry),
        ),
        Some(other) => match routes.and_then(|r| r(other)) {
            Some((content_type, body)) => ("200 OK", content_type, body),
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8".to_string(),
                "not found: try /metrics or /metrics.json\n".to_string(),
            ),
        },
        None => (
            "404 Not Found",
            "text/plain; charset=utf-8".to_string(),
            "not found: try /metrics or /metrics.json\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Reads the request through the end of its headers and returns the path
/// from the request line.
///
/// Draining the full header block matters even though only the first line
/// is parsed: clients may deliver the request across several writes (Rust's
/// `write!` on a stream issues one write per format fragment), and closing
/// the socket with unread bytes in the receive buffer turns the close into
/// an RST that breaks the client mid-request. Clients that send only a bare
/// request line are still served, after the read timeout.
fn read_request_path(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = [0u8; 1024];
    let mut request = Vec::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        request.extend_from_slice(&buf[..n]);
        let headers_done = request.windows(4).any(|w| w == b"\r\n\r\n")
            || request.windows(2).any(|w| w == b"\n\n");
        if headers_done || request.len() > 8 * 1024 {
            break;
        }
    }
    let line_end = request
        .iter()
        .position(|&b| b == b'\n')
        .unwrap_or(request.len());
    let line = String::from_utf8_lossy(&request[..line_end]);
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => Ok(Some(path.to_string())),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrape(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read response");
        out
    }

    #[test]
    fn serves_both_formats_and_404() {
        let registry = Arc::new(Registry::new());
        registry.counter("up_total", "liveness", &[]).inc();
        let mut server =
            TelemetryServer::bind("127.0.0.1:0".parse().unwrap(), Arc::clone(&registry))
                .expect("bind");
        let addr = server.local_addr();

        let text = scrape(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("up_total 1"));

        let json = scrape(addr, "/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("\"up_total\""));

        let missing = scrape(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        server.shutdown();
        server.shutdown(); // idempotent
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    fn custom_routes_answer_and_miss_falls_to_404() {
        let registry = Arc::new(Registry::new());
        let routes: RouteHandler = Arc::new(|path: &str| {
            (path == "/traces").then(|| ("application/json".to_string(), "[]\n".to_string()))
        });
        let mut server = TelemetryServer::bind_with_routes(
            "127.0.0.1:0".parse().unwrap(),
            Arc::clone(&registry),
            routes,
        )
        .expect("bind");
        let addr = server.local_addr();

        let hit = scrape(addr, "/traces");
        assert!(hit.starts_with("HTTP/1.1 200 OK\r\n"), "{hit}");
        assert!(hit.contains("application/json"));
        assert!(hit.ends_with("[]\n"));

        // Built-in endpoints still win, and unknown paths still 404.
        assert!(scrape(addr, "/metrics").contains("version=0.0.4"));
        assert!(scrape(addr, "/nope").starts_with("HTTP/1.1 404"));
        server.shutdown();
    }
}
