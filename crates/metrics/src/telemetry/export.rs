//! Exposition formats: Prometheus text and a JSON snapshot.

use super::registry::{FamilySnapshot, Registry, SeriesValue};

/// Renders the registry in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers per family, cumulative
/// `_bucket{le=...}` series plus `_sum` / `_count` for histograms, and
/// escaped label values.
pub fn render_prometheus(registry: &Registry) -> String {
    let mut out = String::new();
    for family in registry.snapshot() {
        render_family_text(&mut out, &family);
    }
    out
}

fn render_family_text(out: &mut String, family: &FamilySnapshot) {
    out.push_str(&format!(
        "# HELP {} {}\n",
        family.name,
        escape_help(&family.help)
    ));
    out.push_str(&format!(
        "# TYPE {} {}\n",
        family.name,
        family.kind.as_str()
    ));
    for series in &family.series {
        match &series.value {
            SeriesValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    family.name,
                    label_block(&series.labels, None)
                ));
            }
            SeriesValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    family.name,
                    label_block(&series.labels, None),
                    fmt_f64(*v)
                ));
            }
            SeriesValue::Histogram {
                bounds,
                buckets,
                sum,
                count,
                exemplars,
            } => {
                let mut cum = 0u64;
                for (i, bucket) in buckets.iter().enumerate() {
                    cum += bucket;
                    let le = if i < bounds.len() {
                        fmt_f64(bounds[i])
                    } else {
                        "+Inf".to_string()
                    };
                    // OpenMetrics exemplar suffix, only on buckets that have
                    // one: `... N # {trace_id="<id>"} <value>`.
                    let exemplar = match exemplars.get(i).and_then(|e| e.as_ref()) {
                        Some((trace_id, value)) => format!(
                            " # {{trace_id=\"{}\"}} {}",
                            escape_label_value(trace_id),
                            fmt_f64(*value)
                        ),
                        None => String::new(),
                    };
                    out.push_str(&format!(
                        "{}_bucket{} {cum}{exemplar}\n",
                        family.name,
                        label_block(&series.labels, Some(&le))
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    family.name,
                    label_block(&series.labels, None),
                    fmt_f64(*sum)
                ));
                out.push_str(&format!(
                    "{}_count{} {count}\n",
                    family.name,
                    label_block(&series.labels, None)
                ));
            }
        }
    }
}

/// Renders the registry as a JSON object: one key per family, each with
/// `type`, `help`, and a `series` array carrying `labels` and the value
/// (counters/gauges: `value`; histograms: `bounds`, `buckets` (non-
/// cumulative), `sum`, `count`). Non-finite gauge values render as `null`.
pub fn render_json(registry: &Registry) -> String {
    let mut out = String::from("{\n");
    let families = registry.snapshot();
    for (fi, family) in families.iter().enumerate() {
        out.push_str(&format!(
            "  {}: {{\"type\": \"{}\", \"help\": {}, \"series\": [\n",
            json_string(&family.name),
            family.kind.as_str(),
            json_string(&family.help)
        ));
        for (si, series) in family.series.iter().enumerate() {
            out.push_str("    {\"labels\": {");
            for (li, (k, v)) in series.labels.iter().enumerate() {
                if li > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", json_string(k), json_string(v)));
            }
            out.push_str("}, ");
            match &series.value {
                SeriesValue::Counter(v) => out.push_str(&format!("\"value\": {v}")),
                SeriesValue::Gauge(v) => {
                    out.push_str(&format!("\"value\": {}", json_f64(*v)));
                }
                SeriesValue::Histogram {
                    bounds,
                    buckets,
                    sum,
                    count,
                    exemplars: _,
                } => {
                    out.push_str("\"bounds\": [");
                    for (i, b) in bounds.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&json_f64(*b));
                    }
                    out.push_str("], \"buckets\": [");
                    for (i, b) in buckets.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&b.to_string());
                    }
                    out.push_str(&format!(
                        "], \"sum\": {}, \"count\": {count}",
                        json_f64(*sum)
                    ));
                }
            }
            out.push('}');
            if si + 1 < family.series.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]}");
        if fi + 1 < families.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("}\n");
    out
}

impl Registry {
    /// Writes the JSON snapshot to `path` — the disk-dump path the repro and
    /// bench bins use alongside their reports.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, render_json(self))
    }

    /// Writes the Prometheus text exposition to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying filesystem error.
    pub fn write_prometheus(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, render_prometheus(self))
    }
}

/// `{label="value",...}` with Prometheus escaping, plus an optional `le`
/// label appended last (histogram buckets). Empty when there are no labels.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if let Some(le) = le {
        if !first {
            out.push(',');
        }
        out.push_str(&format!("le=\"{le}\""));
    }
    out.push('}');
    out
}

/// Prometheus label-value escaping: backslash, double quote, newline.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Prometheus HELP-text escaping: backslash and newline only.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Minimal float formatting: integers print without a trailing `.0`
/// (Rust's `{}` already does this: `1f64` renders as `1`).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// JSON-safe float: non-finite values become `null` (RFC 8259 has no Inf/NaN).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// JSON string literal with the mandatory RFC 8259 escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::super::log_buckets;
    use super::*;

    #[test]
    fn prometheus_text_shape() {
        let reg = Registry::new();
        reg.counter("x_total", "a counter", &[("model", "m\"1\"")])
            .add(3);
        let h = reg.histogram("lat_us", "latency", &[], &log_buckets(1.0, 2.0, 3));
        h.observe(1.5);
        h.observe(5.0);
        let text = render_prometheus(&reg);
        assert!(text.contains("# TYPE x_total counter\n"));
        assert!(text.contains("x_total{model=\"m\\\"1\\\"\"} 3\n"));
        assert!(text.contains("lat_us_bucket{le=\"2\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("lat_us_count 2\n"));
        assert!(text.contains("lat_us_sum 6.5\n"));
    }

    #[test]
    fn exemplar_suffix_only_on_its_bucket_and_not_in_json() {
        let reg = Registry::new();
        let h = reg.histogram("lat_us", "latency", &[], &log_buckets(1.0, 2.0, 3));
        h.observe(1.5);
        h.observe_with_exemplar(5.0, "00000000deadbeef");
        let text = render_prometheus(&reg);
        // The 5.0 observation overflows the last finite bound (4) into +Inf.
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 2 # {trace_id=\"00000000deadbeef\"} 5\n"));
        assert!(text.contains("lat_us_bucket{le=\"2\"} 1\n"), "{text}");
        // Exemplars are a text-exposition feature; JSON shape is unchanged.
        assert!(!render_json(&reg).contains("deadbeef"));
    }

    #[test]
    fn json_is_braced_and_escaped() {
        let reg = Registry::new();
        reg.gauge("g", "say \"hi\"\n", &[("k", "v\\w")]).set(1.25);
        let json = render_json(&reg);
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert!(json.contains("\"say \\\"hi\\\"\\n\""));
        assert!(json.contains("\"v\\\\w\""));
        assert!(json.contains("\"value\": 1.25"));
    }

    #[test]
    fn nan_gauge_renders_null_in_json() {
        let reg = Registry::new();
        reg.gauge("g", "h", &[]).set(f64::NAN);
        assert!(render_json(&reg).contains("\"value\": null"));
    }
}
