//! Process-wide telemetry: a registry of named, labelled counters, gauges,
//! and bounded log-bucket histograms, with lock-cheap handles for hot paths
//! and two exporters (Prometheus text exposition, JSON snapshot) plus a
//! std-only TCP scrape endpoint.
//!
//! The design splits cleanly in two:
//!
//! * **Registration** is slow-path: [`Registry::counter`], [`Registry::gauge`]
//!   and [`Registry::histogram`] take a global lock, find or create the metric
//!   family and the labelled series, and hand back a cheap `Arc`-backed
//!   handle. Do this once, at subsystem start.
//! * **Updates** are lock-free: [`Counter::inc`], [`Gauge::set`] and
//!   [`Histogram::observe`] touch only atomics on the shared series core, so
//!   the serving hot path pays a few relaxed atomic ops per request and
//!   nothing more.
//!
//! Unlike [`crate::latency::LatencyPercentiles`], which stores every sample
//! and is therefore unbounded for a long-running server, a [`Histogram`]
//! here holds a fixed set of log-spaced buckets: quantile estimates are
//! accurate to within one bucket growth factor, and memory stays constant
//! forever.

mod export;
mod http;
mod registry;

pub use export::{render_json, render_prometheus};
pub use http::{RouteHandler, TelemetryServer};
pub use registry::{log_buckets, Counter, Gauge, Histogram, Registry};
