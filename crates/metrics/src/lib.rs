//! Evaluation metrics used by every experiment harness (paper §II-E).
//!
//! * [`classification`] — top-1 error and cross-engine output-consistency
//!   counting (Tables III–VI).
//! * [`detection`] — IoU-thresholded precision/recall for object detection
//!   (the paper reports IoU 0.75).
//! * [`latency`] — mean(σ) latency formatting matching the paper's
//!   "12.65 (0.05)" table cells, plus FPS computation.
//! * [`cache`] — hit/miss accounting for the build pipeline's memoization
//!   layers (timing cache, engine farm).
//! * [`memory`] — activation-arena footprint accounting for the inference
//!   fast path (peak live bytes vs keep-everything bytes).
//! * [`telemetry`] — the process-wide metric [`Registry`] (counters, gauges,
//!   log-bucket histograms) with Prometheus/JSON exporters and a std-only
//!   TCP scrape endpoint.

#![warn(missing_docs)]

pub mod cache;
pub mod classification;
pub mod detection;
pub mod latency;
pub mod memory;
pub mod telemetry;

pub use cache::CacheStats;
pub use classification::{consistency, top1_error_percent, ConsistencyReport};
pub use detection::{precision_recall, DetectionEval};
pub use latency::{fps_from_latency_us, LatencyCell, LatencyPercentiles};
pub use memory::ArenaStats;
pub use telemetry::{
    log_buckets, render_json, render_prometheus, Counter, Gauge, Histogram, Registry, RouteHandler,
    TelemetryServer,
};
