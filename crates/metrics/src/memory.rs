//! Activation-memory accounting for liveness-driven executors.
//!
//! A keep-everything interpreter holds every layer's output until the pass
//! ends; a liveness-driven arena frees each activation at its last use and
//! recycles the buffer. [`ArenaStats`] captures both footprints so the
//! benchmarks and the fast-path plan can report how much the arena saves —
//! the analog of TensorRT binding its activations to one shared region
//! instead of per-tensor allocations.
//!
//! Two ratios fall out, and they answer different questions:
//!
//! * [`ArenaStats::footprint_ratio`] — peak-live over keep-everything bytes.
//!   *Lower* is better: it is the fraction of an interpreter's activation
//!   memory the plan actually needs. (Early reports published this under the
//!   name `arena_utilization`, where its low values read as embarrassing;
//!   it was measuring savings, not utilization.)
//! * [`ArenaStats::utilization`] — peak-live over the bytes the arena
//!   actually *provisions* for its size-classed slots. *Higher* is better:
//!   it is how full the provisioned slots are at the liveness peak, i.e.
//!   how little slack the size classes carve beyond what the plan uses.

/// Static activation-memory footprint of one execution plan.
///
/// # Examples
///
/// ```
/// use trtsim_metrics::memory::ArenaStats;
///
/// let stats = ArenaStats::new(2048, 16384, 4096, 3, 12);
/// assert!(stats.footprint_ratio() < 0.2);
/// assert_eq!(stats.savings_percent(), 87.5);
/// assert_eq!(stats.utilization(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArenaStats {
    /// Largest byte footprint of simultaneously-live activations.
    pub peak_live_bytes: u64,
    /// Sum of every activation's bytes — what a keep-everything
    /// interpreter holds at the end of a pass.
    pub total_activation_bytes: u64,
    /// Bytes the arena provisions for the plan's slots: each slot sized to
    /// the size class of the largest value it ever holds, summed.
    pub slot_capacity_bytes: u64,
    /// Reusable buffer slots the plan needs.
    pub slot_count: usize,
    /// Values (activations) the plan produces.
    pub value_count: usize,
}

impl ArenaStats {
    /// Bundles the raw counts.
    pub fn new(
        peak_live_bytes: u64,
        total_activation_bytes: u64,
        slot_capacity_bytes: u64,
        slot_count: usize,
        value_count: usize,
    ) -> Self {
        Self {
            peak_live_bytes,
            total_activation_bytes,
            slot_capacity_bytes,
            slot_count,
            value_count,
        }
    }

    /// Peak live bytes over provisioned slot-capacity bytes: how full the
    /// size-classed slots are at the liveness peak (1.0 = no slack carved;
    /// 1.0 is also returned for empty plans with no capacity).
    pub fn utilization(&self) -> f64 {
        if self.slot_capacity_bytes == 0 {
            return 1.0;
        }
        self.peak_live_bytes as f64 / self.slot_capacity_bytes as f64
    }

    /// Peak live bytes over total bytes: the fraction of a keep-everything
    /// footprint the arena actually needs (1.0 when nothing can be freed).
    /// Lower is better — this is a savings measure, not a utilization one.
    pub fn footprint_ratio(&self) -> f64 {
        if self.total_activation_bytes == 0 {
            return 1.0;
        }
        self.peak_live_bytes as f64 / self.total_activation_bytes as f64
    }

    /// Percentage of the keep-everything footprint the arena avoids.
    pub fn savings_percent(&self) -> f64 {
        (1.0 - self.footprint_ratio()) * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deep_chain_peak_is_far_below_total() {
        // 12 equal activations, only a producer/consumer pair live at once.
        let per = 4 * 1024u64;
        let stats = ArenaStats::new(2 * per, 12 * per, 2 * per, 3, 12);
        assert!(stats.peak_live_bytes < stats.total_activation_bytes);
        assert!(
            stats.footprint_ratio() <= 0.25,
            "{}",
            stats.footprint_ratio()
        );
        assert!(stats.savings_percent() >= 75.0);
        assert_eq!(stats.utilization(), 1.0);
    }

    #[test]
    fn slack_capacity_lowers_utilization() {
        // Slots provisioned at 4x the peak -> quarter utilization, while the
        // savings ratio is unaffected.
        let stats = ArenaStats::new(1024, 8192, 4096, 2, 8);
        assert_eq!(stats.utilization(), 0.25);
        assert_eq!(stats.footprint_ratio(), 0.125);
    }

    #[test]
    fn degenerate_graph_uses_whole_footprint() {
        let stats = ArenaStats::new(100, 100, 100, 1, 1);
        assert_eq!(stats.utilization(), 1.0);
        assert_eq!(stats.footprint_ratio(), 1.0);
        assert_eq!(stats.savings_percent(), 0.0);
        // Empty plans must not divide by zero.
        assert_eq!(ArenaStats::new(0, 0, 0, 0, 0).utilization(), 1.0);
        assert_eq!(ArenaStats::new(0, 0, 0, 0, 0).footprint_ratio(), 1.0);
    }
}
