//! Top-1 error and output-consistency metrics.

/// Top-1 error in percent: fraction of predictions differing from labels.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Examples
///
/// ```
/// let err = trtsim_metrics::top1_error_percent(&[0, 1, 2, 2], &[0, 1, 1, 2]);
/// assert_eq!(err, 25.0);
/// ```
pub fn top1_error_percent(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!predictions.is_empty(), "no predictions");
    let wrong = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p != l)
        .count();
    100.0 * wrong as f64 / predictions.len() as f64
}

/// Output-consistency comparison between two engines' predictions on the
/// same inputs (the paper's Tables V/VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Total predictions compared.
    pub total: usize,
    /// Predictions where the two engines disagreed.
    pub mismatches: usize,
}

impl ConsistencyReport {
    /// Mismatch rate in percent.
    pub fn mismatch_percent(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.mismatches as f64 / self.total as f64
        }
    }

    /// Scales the mismatch count to the paper's corpus size (60 000
    /// predictions) for side-by-side comparison with Tables V/VI.
    pub fn scaled_to(&self, corpus: usize) -> f64 {
        self.mismatch_percent() / 100.0 * corpus as f64
    }
}

/// Counts prediction disagreements between two engines.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn consistency(a: &[usize], b: &[usize]) -> ConsistencyReport {
    assert_eq!(a.len(), b.len(), "length mismatch");
    ConsistencyReport {
        total: a.len(),
        mismatches: a.iter().zip(b).filter(|(x, y)| x != y).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_error() {
        assert_eq!(top1_error_percent(&[1, 2, 3], &[1, 2, 3]), 0.0);
    }

    #[test]
    fn all_wrong_is_hundred() {
        assert_eq!(top1_error_percent(&[0, 0], &[1, 1]), 100.0);
    }

    #[test]
    fn consistency_counts_mismatches() {
        let r = consistency(&[1, 2, 3, 4], &[1, 9, 3, 9]);
        assert_eq!(r.total, 4);
        assert_eq!(r.mismatches, 2);
        assert_eq!(r.mismatch_percent(), 50.0);
    }

    #[test]
    fn identical_engines_are_consistent() {
        let r = consistency(&[5; 100], &[5; 100]);
        assert_eq!(r.mismatches, 0);
    }

    #[test]
    fn scaling_to_paper_corpus() {
        // 0.5% of 60,000 = 300 — the middle of the paper's Table V range.
        let r = ConsistencyReport {
            total: 1000,
            mismatches: 5,
        };
        assert_eq!(r.scaled_to(60_000), 300.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        top1_error_percent(&[1], &[1, 2]);
    }
}
