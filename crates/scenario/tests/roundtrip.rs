//! Property test: parse ∘ print is the identity on canonical form.
//!
//! A random scenario AST is generated from a seed, printed with
//! [`ScenarioAst::print`], re-parsed, and printed again: the two printed
//! forms must be byte-identical, and the re-parsed AST must preserve the
//! structure (names, kinds, attribute values) of the original.

use proptest::prelude::*;
use trtsim_scenario::ast::{Attr, Node, NodeKind, ScenarioAst, Value};
use trtsim_scenario::parse::parse;
use trtsim_scenario::span::{Span, Spanned};

/// Deterministic generator state (SplitMix64), seeded per case.
struct Gen {
    state: u64,
}

impl Gen {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// An identifier that can never collide with a keyword or bool literal.
    fn ident(&mut self) -> String {
        let len = 1 + self.below(6) as usize;
        let mut s = String::from("n");
        for _ in 0..len {
            let c = b"abcdefghijklmnopqrstuvwxyz0123456789_-"[self.below(38) as usize];
            s.push(c as char);
        }
        s
    }

    /// A string over a charset including the characters the printer must
    /// escape (`"`, `\`) and ones the lexer must pass through (`#`, space,
    /// newline, non-ASCII).
    fn string(&mut self) -> String {
        let chars = ['a', 'Z', '9', ' ', '"', '\\', '#', '{', '=', 'µ', '\n'];
        let len = self.below(8) as usize;
        (0..len)
            .map(|_| chars[self.below(chars.len() as u64) as usize])
            .collect()
    }

    fn number(&mut self) -> f64 {
        match self.below(4) {
            0 => self.below(10_000) as f64,
            1 => -(self.below(1_000) as f64),
            2 => self.below(1_000_000) as f64 / 128.0,
            _ => f64::from_bits(self.next() >> 2),
        }
    }

    fn value(&mut self, depth: u32) -> Value {
        match self.below(if depth == 0 { 5 } else { 4 }) {
            0 => Value::Str(self.string()),
            1 => {
                let mut n = self.number();
                if !n.is_finite() {
                    n = 0.5;
                }
                Value::Num(n)
            }
            2 => Value::Bool(self.below(2) == 0),
            3 => Value::Ident(self.ident()),
            _ => {
                let len = self.below(4) as usize;
                Value::List(
                    (0..len)
                        .map(|_| Spanned::new(self.value(depth + 1), Span::default()))
                        .collect(),
                )
            }
        }
    }

    fn node(&mut self) -> Node {
        let kind = NodeKind::ALL[self.below(4) as usize];
        let attrs = (0..self.below(4))
            .map(|_| Attr {
                name: Spanned::new(self.ident(), Span::default()),
                value: Spanned::new(self.value(0), Span::default()),
            })
            .collect();
        Node {
            kind: Spanned::new(kind, Span::default()),
            name: Spanned::new(self.ident(), Span::default()),
            attrs,
            span: Span::default(),
        }
    }

    fn scenario(&mut self) -> ScenarioAst {
        let nodes = (0..self.below(5)).map(|_| self.node()).collect();
        ScenarioAst {
            name: Spanned::new(self.string(), Span::default()),
            nodes,
            span: Span::default(),
        }
    }
}

/// Structural equality ignoring spans.
fn same_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => x == y,
        (Value::Num(x), Value::Num(y)) => x.to_bits() == y.to_bits(),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Ident(x), Value::Ident(y)) => x == y,
        (Value::List(xs), Value::List(ys)) => {
            xs.len() == ys.len()
                && xs
                    .iter()
                    .zip(ys)
                    .all(|(x, y)| same_value(&x.value, &y.value))
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_print_round_trips(seed in 0u64..u64::MAX) {
        let mut gen = Gen { state: seed };
        let ast = gen.scenario();
        let printed = ast.print();
        let reparsed = match parse(&printed) {
            Ok(reparsed) => reparsed,
            Err(errs) => {
                return Err(TestCaseError::fail(format!(
                    "printed form failed to parse: {errs:?}\n{printed}"
                )))
            }
        };
        prop_assert_eq!(&reparsed.print(), &printed);
        prop_assert_eq!(&reparsed.name.value, &ast.name.value);
        prop_assert_eq!(reparsed.nodes.len(), ast.nodes.len());
        for (got, want) in reparsed.nodes.iter().zip(&ast.nodes) {
            prop_assert_eq!(got.kind.value, want.kind.value);
            prop_assert_eq!(&got.name.value, &want.name.value);
            prop_assert_eq!(got.attrs.len(), want.attrs.len());
            for (ga, wa) in got.attrs.iter().zip(&want.attrs) {
                prop_assert_eq!(&ga.name.value, &wa.name.value);
                prop_assert!(
                    same_value(&ga.value.value, &wa.value.value),
                    "value drift: {:?} vs {:?}", ga.value.value, wa.value.value
                );
            }
        }
    }
}
