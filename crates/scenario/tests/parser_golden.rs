//! Parser golden tests: every [`ParseError`] variant, with exact byte-span
//! assertions — errors must land on the offending bytes, not merely occur.

use trtsim_scenario::parse::{parse, ParseError};
use trtsim_scenario::span::Span;

fn errors(src: &str) -> Vec<ParseError> {
    parse(src).expect_err("source is intentionally broken")
}

#[test]
fn unexpected_char_spans_the_byte() {
    let src = "scenario \"x\" { @ }";
    let at = src.find('@').unwrap();
    let errs = errors(src);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            ParseError::UnexpectedChar { ch: '@', span } if *span == Span::new(at, at + 1)
        )),
        "{errs:?}"
    );
}

#[test]
fn unexpected_char_spans_multibyte() {
    let src = "scenario \"x\" { £ }";
    let at = src.find('£').unwrap();
    let errs = errors(src);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            ParseError::UnexpectedChar { ch: '£', span } if *span == Span::new(at, at + 2)
        )),
        "{errs:?}"
    );
}

#[test]
fn unterminated_string_spans_to_eof() {
    let src = "scenario \"x";
    let open = src.find('"').unwrap();
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            ParseError::UnterminatedString { span } if *span == Span::new(open, src.len())
        ),
        "{errs:?}"
    );
}

#[test]
fn invalid_number_spans_the_digits() {
    let src = "scenario \"x\" { device d { batch = 1.2.3 } }";
    let at = src.find("1.2.3").unwrap();
    let errs = errors(src);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            ParseError::InvalidNumber { text, span }
                if text == "1.2.3" && *span == Span::new(at, at + 5)
        )),
        "{errs:?}"
    );
}

#[test]
fn expected_token_spans_the_wrong_token() {
    // `device d` is missing its `{`: the parser reports it at the next
    // token and recovers at the following statement.
    let src = "scenario \"x\" { device d device e { } }";
    let at = src.rfind("device").unwrap();
    let errs = errors(src);
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert!(
        matches!(
            &errs[0],
            ParseError::Expected { what: "`{`", span, .. } if *span == Span::new(at, at + 6)
        ),
        "{errs:?}"
    );
}

#[test]
fn unknown_node_kind_spans_the_word() {
    let src = "scenario \"x\" { widget w { } }";
    let at = src.find("widget").unwrap();
    let errs = errors(src);
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert!(
        matches!(
            &errs[0],
            ParseError::UnknownNodeKind { word, span }
                if word == "widget" && *span == Span::new(at, at + 6)
        ),
        "{errs:?}"
    );
}

#[test]
fn missing_scenario_header_spans_the_first_token() {
    let src = "device d { }";
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            ParseError::MissingScenarioHeader { span } if *span == Span::new(0, 6)
        ),
        "{errs:?}"
    );
}

#[test]
fn errors_accumulate_instead_of_aborting() {
    // Three distinct problems in one file: a stray byte, a malformed
    // number, and an unknown node kind. One parse reports all of them.
    let src = "scenario \"x\" {\n  widget w { }\n  device d { batch = 1..5 }\n  $\n}";
    let errs = errors(src);
    assert!(errs.len() >= 3, "only {} errors: {errs:?}", errs.len());
    let widget = src.find("widget").unwrap();
    let number = src.find("1..5").unwrap();
    let dollar = src.find('$').unwrap();
    assert!(errs
        .iter()
        .any(|e| matches!(e, ParseError::UnknownNodeKind { span, .. } if span.lo == widget)));
    assert!(errs
        .iter()
        .any(|e| matches!(e, ParseError::InvalidNumber { span, .. } if span.lo == number)));
    assert!(errs
        .iter()
        .any(|e| matches!(e, ParseError::UnexpectedChar { span, .. } if span.lo == dollar)));
}

#[test]
fn diagnostics_render_with_line_and_caret() {
    let src = "scenario \"x\" {\n  widget w { }\n}";
    let errs = errors(src);
    let rendered = errs[0].diagnostic().render("bad.scn", src);
    assert!(
        rendered.contains("bad.scn:2:3: error: unknown node kind"),
        "{rendered}"
    );
    assert!(rendered.contains("^~~~~~"), "{rendered}");
}

#[test]
fn comments_and_recovery_do_not_leak_errors() {
    let src = "# header comment\nscenario \"ok\" { # trailing\n  device d { platform = nx }\n}\n";
    let ast = parse(src).expect("valid source");
    assert_eq!(ast.name.value, "ok");
    assert_eq!(ast.nodes.len(), 1);
    let span = ast.nodes[0].name.span;
    assert_eq!(&src[span.lo..span.hi], "d");
}
