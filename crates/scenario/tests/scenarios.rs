//! Integration: the checked-in `.scn` files drive the generic driver to
//! numbers *equal* to the legacy harnesses' — not approximately, exactly.
//! That is the migration contract: a scenario file is a faithful
//! re-expression of the hand-coded bin it replaces.

use std::path::PathBuf;

use trtsim_core::runtime::{ExecutionContext, TimingOptions};
use trtsim_core::{Builder, BuilderConfig};
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_models::ModelId;
use trtsim_repro::{exp_fps, exp_serving};
use trtsim_scenario::{check_src, compile_src, driver, emit, CompileOptions};

fn scn(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn run_scn(name: &str) -> driver::ScenarioReport {
    let src = scn(name);
    let plan = compile_src(&src, CompileOptions::default())
        .unwrap_or_else(|e| panic!("{name}: {}", e.render(name, &src)));
    driver::run(&plan).expect("driver runs")
}

#[test]
fn table7_scn_matches_legacy_harness() {
    let report = run_scn("table7_fps.scn");
    let legacy = exp_fps::run();
    assert_eq!(report.units.len(), legacy.rows.len() * 2);
    for row in &legacy.rows {
        for (i, platform) in Platform::all().into_iter().enumerate() {
            let unit = report
                .units
                .iter()
                .find(|u| u.network == row.model && u.platform == platform)
                .unwrap_or_else(|| panic!("no unit for {} on {platform}", row.model));
            assert_eq!(unit.metric("fps"), Some(row.tensorrt[i]), "{}", unit.label);
            assert_eq!(
                unit.metric("unoptimized_fps"),
                Some(row.unoptimized[i]),
                "{}",
                unit.label
            );
            assert_eq!(unit.metric("gain"), Some(row.gain()[i]), "{}", unit.label);
        }
    }
    assert!(report.passed(), "{:?}", report.asserts);
}

#[test]
fn serving_scn_matches_legacy_sweep() {
    let report = run_scn("serving_batch_sweep.scn");
    let legacy = exp_serving::run(ModelId::TinyYolov3, Platform::Nx);
    assert_eq!(report.units.len(), legacy.points.len());
    for point in &legacy.points {
        let unit = report
            .units
            .iter()
            .find(|u| u.batch as usize == point.max_batch_size)
            .unwrap_or_else(|| panic!("no unit for batch {}", point.max_batch_size));
        assert_eq!(unit.metric("batches"), Some(point.batches as f64));
        assert_eq!(unit.metric("fps"), Some(point.fps), "{}", unit.label);
        assert_eq!(unit.metric("gr3d_percent"), Some(point.gr3d_percent));
        assert_eq!(unit.metric("mean_us"), Some(point.latency.mean_us));
        assert_eq!(unit.metric("p50_us"), Some(point.latency.p50_us));
        assert_eq!(unit.metric("p90_us"), Some(point.latency.p90_us));
        assert_eq!(unit.metric("p99_us"), Some(point.latency.p99_us));
        assert_eq!(unit.metric("max_us"), Some(point.latency.max_us));
        assert_eq!(unit.metric("completed"), Some(legacy.frames as f64));
    }
    assert!(report.passed(), "{:?}", report.asserts);
}

#[test]
fn adas_scn_matches_example_inline() {
    // The adas_pipeline example, recomputed inline: 12 fresh AGX builds
    // seeded 0xADA5 + build, 30 timed runs each with the default 2% jitter.
    // The scenario's engines are built through the farm with the shared
    // timing cache attached; this equality is also the proof that cache
    // attachment is output-invariant.
    let report = run_scn("adas_wcet.scn");
    assert_eq!(report.units.len(), 1);
    let unit = &report.units[0];
    assert_eq!(unit.builds.len(), 12);

    let device = DeviceSpec::xavier_agx();
    let network = ModelId::Pednet.descriptor();
    let opts = TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(ModelId::Pednet.info().host_glue_us);
    let mut all = Vec::new();
    for build in 0..12u64 {
        let engine = Builder::new(
            device.clone(),
            BuilderConfig::default().with_build_seed(0xADA5 + build),
        )
        .build(&network)
        .expect("pednet builds");
        let ctx = ExecutionContext::new(&engine, device.clone());
        let runs = ctx.measure_latency(&opts, 30, build);
        assert_eq!(
            unit.builds[build as usize].samples, runs,
            "build {build} diverged from the example"
        );
        all.extend(runs);
    }
    let fleet = trtsim_util::stats::Summary::from_samples(&all);
    assert_eq!(unit.metric("p95_us"), Some(fleet.p95));
    assert_eq!(unit.metric("mean_us"), Some(fleet.mean));
    assert!(report.passed(), "{:?}", report.asserts);
}

#[test]
fn smoke_mode_caps_the_plan() {
    let src = scn("adas_wcet.scn");
    let full = compile_src(&src, CompileOptions::default()).unwrap();
    let smoke = compile_src(&src, CompileOptions { smoke: true }).unwrap();
    assert_eq!(full.units[0].builds, 12);
    assert_eq!(smoke.units[0].builds, 2);
    match (&full.units[0].kind, &smoke.units[0].kind) {
        (
            trtsim_scenario::TrafficKind::Latency { runs: f, .. },
            trtsim_scenario::TrafficKind::Latency { runs: s, .. },
        ) => {
            assert_eq!(*f, 30);
            assert_eq!(*s, 5);
        }
        other => panic!("wrong kinds: {other:?}"),
    }
}

#[test]
fn every_checked_in_scenario_validates() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_some_and(|e| e == "scn") {
            let src = std::fs::read_to_string(&path).expect("readable scenario");
            check_src(&src)
                .unwrap_or_else(|e| panic!("{}", e.render(&path.display().to_string(), &src)));
            seen += 1;
        }
    }
    assert!(seen >= 4, "only {seen} scenario files found in {dir:?}");
}

#[test]
fn emitted_reports_carry_the_schema_and_assertions() {
    let report = run_scn("poisson_openloop.scn");
    assert!(report.passed(), "{:?}", report.asserts);

    let bench = emit::to_bench_report(&report, "full", "testrev");
    let json = bench.to_json();
    for needle in [
        "\"tool\": \"trtsim-bench\"",
        "\"benchmark\": \"scenario\"",
        "\"scenario\": \"poisson open loop\"",
        "asserts_passed",
        "\"bit_identical\": true",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }

    let md = emit::to_markdown(&report);
    assert!(md.contains("# Scenario `poisson open loop`"), "{md}");
    assert!(md.contains("## assertions"), "{md}");
    assert!(md.contains("result: **PASS**"), "{md}");
}

#[test]
fn invalid_scenario_accumulates_spanned_diagnostics() {
    // End-to-end: a file with one syntax recovery point and several
    // semantic problems produces a full diagnostic set, each with a span
    // that renders to the right line.
    let src = "scenario \"broken\" {\n  device d { platform = tpu }\n  device d { platform = nx }\n  model m { uses = [ghost] network = warpnet }\n}\n";
    let err = check_src(src).expect_err("broken scenario");
    let diags = err.diagnostics();
    assert!(
        diags.len() >= 4,
        "only {} diagnostics: {diags:?}",
        diags.len()
    );
    // Spans are real byte ranges into the source, sorted by position.
    for pair in diags.windows(2) {
        assert!(pair[0].span.lo <= pair[1].span.lo);
    }
    let rendered = err.render("broken.scn", src);
    assert!(rendered.contains("broken.scn:2:"), "{rendered}");
    assert!(rendered.contains("unknown platform `tpu`"), "{rendered}");
    assert!(rendered.contains("duplicate node name `d`"), "{rendered}");
    assert!(rendered.contains("unknown node `ghost`"), "{rendered}");
    assert!(rendered.contains("unknown model `warpnet`"), "{rendered}");
}

#[test]
fn concurrency_scn_matches_legacy_harness() {
    // Migration contract for the 36-stream ceiling harness: the DSL's
    // `kind = concurrency` path must reproduce `exp_concurrency::run`
    // exactly — same zoo engine, same profile, same sweep.
    let report = run_scn("fig3_fig4_concurrency.scn");
    assert_eq!(report.units.len(), 4);
    for unit in &report.units {
        let legacy = trtsim_repro::exp_concurrency::run(unit.network, unit.platform);
        assert_eq!(
            unit.metric("max_threads"),
            Some(f64::from(legacy.max_threads())),
            "{}",
            unit.label
        );
        assert_eq!(
            unit.metric("fps"),
            legacy.points.last().map(|p| p.fps),
            "{}",
            unit.label
        );
        assert_eq!(
            unit.metric("gr3d_percent"),
            Some(legacy.saturation_utilization_percent()),
            "{}",
            unit.label
        );
    }
    assert!(report.passed(), "{:?}", report.asserts);
}

#[test]
fn fleet_scn_spans_devices_and_conserves_requests() {
    let src = scn("fleet_diurnal.scn");
    let plan = compile_src(&src, CompileOptions { smoke: true }).unwrap();
    // One unit spanning all four devices — no per-device cross product.
    assert_eq!(plan.units.len(), 1);
    assert_eq!(plan.units[0].fleet_devices.len(), 4);
    assert_eq!(
        plan.units[0].label(),
        "diurnal/classifier/Googlenet@fleet4 b1"
    );
    match &plan.units[0].kind {
        trtsim_scenario::TrafficKind::Fleet { frames, queue, .. } => {
            assert_eq!(*frames, 32, "smoke caps frames");
            assert_eq!(*queue, 32, "smoke caps queue");
        }
        other => panic!("wrong kind: {other:?}"),
    }
    let report = driver::run(&plan).expect("driver runs");
    assert!(report.passed(), "{:?}", report.asserts);
    let unit = &report.units[0];
    assert_eq!(unit.kind, "fleet");
    // Conservation: offered = accepted + rejected, accepted = completed +
    // dropped — the router never loses a request.
    let m = |k| unit.metric(k).unwrap_or_else(|| panic!("missing {k}"));
    assert_eq!(m("accepted") + m("rejected"), 32.0);
    assert_eq!(m("completed") + m("dropped"), m("accepted"));
    assert_eq!(m("devices"), 4.0);
    assert!(m("max_device_share") <= 1.0);
    assert!(m("min_device_share") >= 0.0);

    let bench = emit::to_bench_report(&report, "smoke", "testrev");
    let json = bench.to_json();
    for needle in ["\"accepted\"", "\"devices\"", "@fleet4"] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}
