//! Validation tests: each semantic check fires with the right span, and
//! errors accumulate across a broken file instead of aborting at the first.

use trtsim_gpu::device::Platform;
use trtsim_scenario::ast::NodeKind;
use trtsim_scenario::parse::parse;
use trtsim_scenario::validate::{validate, EngineSource, PowerMode, SemanticError, TrafficKind};

fn errors(src: &str) -> Vec<SemanticError> {
    validate(&parse(src).expect("syntactically valid"))
        .expect_err("source is intentionally semantically broken")
}

#[test]
fn duplicate_node_points_at_both_declarations() {
    let src = "scenario \"s\" {\n  device a { platform = nx }\n  device a { platform = agx }\n}";
    let first = src.find("a {").unwrap();
    let second = src.rfind("a {").unwrap();
    let errs = errors(src);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            SemanticError::DuplicateNode { name, span, first: f }
                if name == "a" && span.lo == second && f.lo == first
        )),
        "{errs:?}"
    );
}

#[test]
fn dangling_edge_points_at_the_reference() {
    let src = "scenario \"s\" {\n  device d { platform = nx }\n  model m { uses = [d, ghost] network = alexnet }\n}";
    let at = src.find("ghost").unwrap();
    let errs = errors(src);
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert!(
        matches!(
            &errs[0],
            SemanticError::DanglingEdge { name, span } if name == "ghost" && span.lo == at
        ),
        "{errs:?}"
    );
}

#[test]
fn cycle_is_reported_with_the_closing_edge() {
    // a -> b -> a. The same edges are also kind-invalid (traffic must use
    // models), and both problems are reported — accumulation, not
    // either/or.
    let src = "scenario \"s\" {\n  traffic a { uses = [b] kind = latency }\n  traffic b { uses = [a] kind = latency }\n}";
    let closing = src.rfind("[a]").unwrap() + 1;
    let errs = errors(src);
    let cycle = errs
        .iter()
        .find_map(|e| match e {
            SemanticError::Cycle { path, span } => Some((path.clone(), *span)),
            _ => None,
        })
        .unwrap_or_else(|| panic!("no cycle error in {errs:?}"));
    assert_eq!(cycle.0, vec!["a", "b", "a"]);
    assert_eq!(cycle.1.lo, closing);
    let bad_kind = errs
        .iter()
        .filter(|e| matches!(e, SemanticError::BadEdgeKind { .. }))
        .count();
    assert_eq!(bad_kind, 2, "{errs:?}");
}

#[test]
fn bad_edge_kind_names_the_kinds() {
    let src = "scenario \"s\" {\n  device d { platform = nx }\n  model m { uses = [d] network = alexnet }\n  assert a { uses = [m] metric = fps min = 1 }\n}";
    let at = src.find("[m]").unwrap() + 1;
    let errs = errors(src);
    assert!(
        errs.iter().any(|e| matches!(
            e,
            SemanticError::BadEdgeKind { from: NodeKind::Assert, to: NodeKind::Model, expected: NodeKind::Traffic, span }
                if span.lo == at
        )),
        "{errs:?}"
    );
}

#[test]
fn unsatisfied_requires_points_at_capability_and_device() {
    let src = "scenario \"s\" {\n  device d { platform = nx provides = [fp16] }\n  model m { uses = [d] network = alexnet requires = [dla] }\n}";
    let at = src.find("dla").unwrap();
    let device_at = src.find("d {").unwrap();
    let errs = errors(src);
    assert_eq!(errs.len(), 1, "{errs:?}");
    assert!(
        matches!(
            &errs[0],
            SemanticError::UnsatisfiedRequires { capability, device, span, device_span }
                if capability == "dla" && device == "d" && span.lo == at && device_span.lo == device_at
        ),
        "{errs:?}"
    );
}

#[test]
fn satisfied_requires_is_silent() {
    let src = "scenario \"s\" {\n  device d { platform = nx provides = [dla, fp16] }\n  model m { uses = [d] network = alexnet requires = [dla] }\n}";
    assert!(validate(&parse(src).unwrap()).is_ok());
}

#[test]
fn unknown_model_points_at_the_name() {
    let src = "scenario \"s\" {\n  device d { platform = nx }\n  model m { uses = [d] network = warpnet }\n}";
    let at = src.find("warpnet").unwrap();
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            SemanticError::UnknownModel { name, span } if name == "warpnet" && span.lo == at
        ),
        "{errs:?}"
    );
}

#[test]
fn unknown_platform_points_at_the_name() {
    let src = "scenario \"s\" {\n  device d { platform = tpu }\n}";
    let at = src.find("tpu").unwrap();
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            SemanticError::UnknownPlatform { name, span } if name == "tpu" && span.lo == at
        ),
        "{errs:?}"
    );
}

#[test]
fn unknown_attr_points_at_the_attr_name() {
    let src = "scenario \"s\" {\n  device d { platform = nx colour = red }\n}";
    let at = src.find("colour").unwrap();
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            SemanticError::UnknownAttr { kind: NodeKind::Device, name, span }
                if name == "colour" && span.lo == at
        ),
        "{errs:?}"
    );
}

#[test]
fn missing_attr_points_at_the_node_name() {
    let src = "scenario \"s\" {\n  device bare { }\n}";
    let at = src.find("bare").unwrap();
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            SemanticError::MissingAttr { kind: NodeKind::Device, name: "platform", span }
                if span.lo == at
        ),
        "{errs:?}"
    );
}

#[test]
fn type_mismatch_points_at_the_value() {
    let src = "scenario \"s\" {\n  device d { platform = nx }\n  model m { uses = [d] network = alexnet }\n  traffic t { uses = [m] kind = latency runs = [1] }\n}";
    let at = src.find("[1]").unwrap();
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            SemanticError::TypeMismatch { attr, expected: "number", found: "list", span }
                if attr == "runs" && span.lo == at
        ),
        "{errs:?}"
    );
}

#[test]
fn bad_value_points_at_the_value() {
    let src = "scenario \"s\" {\n  device d { platform = nx }\n  model m { uses = [d] network = alexnet batch = 0 }\n}";
    let at = src.find('0').unwrap();
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            SemanticError::BadValue { attr, span, .. } if attr == "batch" && span.lo == at
        ),
        "{errs:?}"
    );
}

#[test]
fn unknown_metric_is_rejected() {
    let src = "scenario \"s\" {\n  device d { platform = nx }\n  model m { uses = [d] network = alexnet }\n  traffic t { uses = [m] kind = latency }\n  assert a { uses = [t] metric = flops min = 1 }\n}";
    let at = src.find("flops").unwrap();
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            SemanticError::BadValue { attr, span, .. } if attr == "metric" && span.lo == at
        ),
        "{errs:?}"
    );
}

#[test]
fn non_positive_deadline_is_rejected() {
    let src = "scenario \"s\" {\n  device d { platform = nx }\n  model m { uses = [d] network = alexnet }\n  traffic t { uses = [m] kind = poisson period_us = 1000 deadline_us = -5 }\n}";
    let at = src.find("-5").unwrap();
    let errs = errors(src);
    assert!(
        matches!(
            &errs[0],
            SemanticError::BadValue { attr, span, .. } if attr == "deadline_us" && span.lo == at
        ),
        "{errs:?}"
    );
}

#[test]
fn errors_accumulate_across_checks() {
    // Five distinct semantic problems in one file; one validate reports all.
    let src = "scenario \"s\" {\n  device d { platform = tpu }\n  device d { platform = nx }\n  model m { uses = [ghost] network = warpnet }\n  assert a { uses = [m] metric = fps min = 1 }\n}";
    let errs = errors(src);
    assert!(errs.len() >= 5, "only {} errors: {errs:?}", errs.len());
    let has = |f: fn(&SemanticError) -> bool| errs.iter().any(f);
    assert!(has(|e| matches!(e, SemanticError::UnknownPlatform { .. })));
    assert!(has(|e| matches!(e, SemanticError::DuplicateNode { .. })));
    assert!(has(|e| matches!(e, SemanticError::DanglingEdge { .. })));
    assert!(has(|e| matches!(e, SemanticError::UnknownModel { .. })));
    assert!(has(|e| matches!(e, SemanticError::BadEdgeKind { .. })));
}

#[test]
fn valid_scenario_produces_the_typed_graph() {
    let src = "scenario \"good\" {\n  device nx { platform = nx power = pinned }\n  model m { uses = [nx] networks = [alexnet, googlenet] batches = [1, 4] source = fresh seed = 9 builds = 3 }\n  traffic t { uses = [m] kind = poisson period_us = 500 seed = 2 }\n  assert a { uses = [t] metric = fps min = 1 max = 100000 }\n}";
    let graph = validate(&parse(src).unwrap()).expect("valid");
    assert_eq!(graph.name, "good");
    assert_eq!(graph.devices.len(), 1);
    assert_eq!(graph.devices[0].platform, Platform::Nx);
    assert_eq!(graph.devices[0].power, PowerMode::Pinned);
    let m = &graph.models[0];
    assert_eq!(m.networks.len(), 2);
    assert_eq!(m.batches, vec![1, 4]);
    assert_eq!(m.source, EngineSource::Fresh { seed: 9 });
    assert_eq!(m.builds, 3);
    assert_eq!(m.devices, vec![0]);
    match &graph.traffic[0].kind {
        TrafficKind::Poisson {
            period_us, seed, ..
        } => {
            assert_eq!(*period_us, 500.0);
            assert_eq!(*seed, 2);
        }
        other => panic!("wrong kind: {other:?}"),
    }
    assert_eq!(graph.traffic[0].models, vec![0]);
    assert_eq!(graph.asserts[0].traffic, vec![0]);
    assert_eq!(graph.asserts[0].min, Some(1.0));
}
