//! The scenario runner: `scenario run|check|list`.
//!
//! ```sh
//! scenario check scenarios/                 # validate every checked-in .scn
//! scenario list scenarios/                  # what's available
//! scenario run scenarios/table7_fps.scn     # execute + print markdown
//! scenario run scenarios/poisson_openloop.scn --smoke --out REPORT.json
//! ```
//!
//! `check` exits non-zero if any file fails to parse or validate, printing
//! every accumulated diagnostic compiler-style. `run` exits non-zero when
//! an assertion fails, so both subcommands work as CI gates.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use trtsim_bench::report::git_rev;
use trtsim_scenario::{check_src, compile_src, driver, emit, CompileOptions};

const USAGE: &str = "usage:
  scenario check <file.scn | dir>...
  scenario list  <file.scn | dir>...
  scenario run   <file.scn> [--smoke] [--out REPORT.json] [--md REPORT.md]
                 [--trace-out DIR] [--git-rev SHA]";

/// Expands each argument into `.scn` files (directories scan one level).
fn scn_files(paths: &[String]) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for raw in paths {
        let path = Path::new(raw);
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .map(|it| {
                    it.filter_map(|e| e.ok())
                        .map(|e| e.path())
                        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
                        .collect()
                })
                .unwrap_or_default();
            entries.sort();
            files.extend(entries);
        } else {
            files.push(path.to_path_buf());
        }
    }
    files
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn cmd_check(paths: &[String]) -> ExitCode {
    let files = scn_files(paths);
    if files.is_empty() {
        eprintln!("scenario check: no .scn files under {paths:?}");
        return ExitCode::from(2);
    }
    let mut failed = 0usize;
    for file in &files {
        let src = match read(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("error: {e}");
                failed += 1;
                continue;
            }
        };
        match check_src(&src) {
            Ok(graph) => println!(
                "ok: {} — \"{}\" ({} devices, {} models, {} traffic, {} asserts)",
                file.display(),
                graph.name,
                graph.devices.len(),
                graph.models.len(),
                graph.traffic.len(),
                graph.asserts.len()
            ),
            Err(err) => {
                eprint!("{}", err.render(&file.display().to_string(), &src));
                eprintln!("{}: {err}", file.display());
                failed += 1;
            }
        }
    }
    if failed == 0 {
        println!("{} scenario file(s) valid", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("{failed} of {} scenario file(s) invalid", files.len());
        ExitCode::FAILURE
    }
}

fn cmd_list(paths: &[String]) -> ExitCode {
    let files = scn_files(paths);
    if files.is_empty() {
        eprintln!("scenario list: no .scn files under {paths:?}");
        return ExitCode::from(2);
    }
    for file in &files {
        match read(file)
            .and_then(|src| check_src(&src).map_err(|e| format!("{}: {e}", file.display())))
        {
            Ok(graph) => {
                let units = trtsim_scenario::compile(&graph, CompileOptions::default())
                    .units
                    .len();
                println!("{}\t\"{}\"\t{} units", file.display(), graph.name, units);
            }
            Err(e) => println!("{}\t(invalid: {e})", file.display()),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut file = None;
    let mut smoke = false;
    let mut out = None;
    let mut md = None;
    let mut trace_out = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => smoke = true,
            "--out" | "--md" | "--trace-out" | "--git-rev" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{} needs a value\n{USAGE}", args[i]);
                    return ExitCode::from(2);
                };
                match args[i].as_str() {
                    "--out" => out = Some(value.clone()),
                    "--md" => md = Some(value.clone()),
                    "--trace-out" => trace_out = Some(value.clone()),
                    _ => {} // --git-rev is re-read via bench::report::git_rev
                }
                i += 1;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    eprintln!("run takes exactly one .scn file\n{USAGE}");
                    return ExitCode::from(2);
                }
            }
        }
        i += 1;
    }
    let Some(file) = file else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let src = match read(Path::new(&file)) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let plan = match compile_src(&src, CompileOptions { smoke }) {
        Ok(plan) => plan,
        Err(err) => {
            eprint!("{}", err.render(&file, &src));
            eprintln!("{file}: {err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "running scenario \"{}\": {} unit(s), {} assertion(s){}",
        plan.name,
        plan.units.len(),
        plan.asserts.len(),
        if smoke { " [smoke]" } else { "" }
    );
    let report = match driver::run(&plan) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("driver error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let markdown = emit::to_markdown(&report);
    print!("{markdown}");
    if let Some(md_path) = md {
        if let Err(e) = std::fs::write(&md_path, &markdown) {
            eprintln!("error writing {md_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(out_path) = out {
        let mode = if smoke { "smoke" } else { "full" };
        emit::to_bench_report(&report, mode, &git_rev(args)).write(&out_path);
        eprintln!("report written to {out_path}");
    }
    if let Some(dir) = trace_out {
        if let Err(e) = write_traces(Path::new(&dir), &report) {
            eprintln!("error writing traces to {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Dumps each unit's retained flight-recorder traces under `dir`: a JSON
/// array (`<unit>_traces.json`) plus a chrome://tracing document
/// (`<unit>_trace.chrome.json`) per serving/fleet unit that retained any.
fn write_traces(dir: &Path, report: &driver::ScenarioReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut dumped = 0usize;
    for unit in &report.units {
        if unit.traces.is_empty() {
            continue;
        }
        // Unit labels may contain path-hostile characters; keep [a-z0-9_-].
        let stem: String = unit
            .label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect();
        std::fs::write(
            dir.join(format!("{stem}_traces.json")),
            trtsim_core::reqtrace::traces_json(&unit.traces),
        )?;
        std::fs::write(
            dir.join(format!("{stem}_trace.chrome.json")),
            trtsim_core::reqtrace::chrome_trace_all(&unit.traces),
        )?;
        dumped += 1;
    }
    eprintln!("traces for {dumped} unit(s) written to {}", dir.display());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "check" => cmd_check(rest),
        Some((cmd, rest)) if cmd == "list" => cmd_list(rest),
        Some((cmd, rest)) if cmd == "run" => cmd_run(rest),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
