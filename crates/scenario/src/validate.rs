//! Semantic validation: AST → typed [`ScenarioGraph`], accumulating errors.
//!
//! Modeled on tast's span-carrying semantic checks and Sunscreen's
//! `validate_ir`: the pass never stops at the first problem. Every check —
//! duplicate node names, dangling `uses` references, cycles, wrong-kind
//! edges, unknown model/platform identifiers, unknown or mistyped
//! attributes, unsatisfied `requires` — appends to one error list, and a
//! file with ten mistakes produces ten spans. Only if the list ends empty
//! does the caller get the typed graph.
//!
//! The typed graph is deliberately index-linked (`Vec` positions, not
//! names) so the compiler in [`mod@crate::compile`] never resolves a name
//! again.

use crate::ast::{Node, NodeKind, ScenarioAst, Value};
use crate::span::{Diagnostic, Span, Spanned};
use trtsim_gpu::device::Platform;
use trtsim_models::ModelId;

/// A semantic error with the byte span it is anchored at.
#[derive(Debug, Clone, PartialEq)]
pub enum SemanticError {
    /// Two nodes share a name.
    DuplicateNode {
        /// The repeated name.
        name: String,
        /// The second declaration.
        span: Span,
        /// The first declaration.
        first: Span,
    },
    /// A `uses` / `requires` reference to a node that does not exist.
    DanglingEdge {
        /// The missing name.
        name: String,
        /// The reference.
        span: Span,
    },
    /// The `uses` edges form a cycle.
    Cycle {
        /// Node names along the cycle, starting and ending at the same node.
        path: Vec<String>,
        /// The edge reference that closes the cycle.
        span: Span,
    },
    /// A `uses` edge points at the wrong node kind.
    BadEdgeKind {
        /// Kind of the node holding the edge.
        from: NodeKind,
        /// Kind of the referenced node.
        to: NodeKind,
        /// Kind the edge must point at.
        expected: NodeKind,
        /// The reference.
        span: Span,
    },
    /// A `requires` capability no used device `provides`.
    UnsatisfiedRequires {
        /// The missing capability.
        capability: String,
        /// Name of the device lacking it.
        device: String,
        /// The requirement.
        span: Span,
        /// The device declaration.
        device_span: Span,
    },
    /// A network name no [`ModelId`] matches.
    UnknownModel {
        /// The name as written.
        name: String,
        /// Where it was written.
        span: Span,
    },
    /// A platform name that is neither `nx` nor `agx`.
    UnknownPlatform {
        /// The name as written.
        name: String,
        /// Where it was written.
        span: Span,
    },
    /// An attribute this node kind does not define.
    UnknownAttr {
        /// The node kind.
        kind: NodeKind,
        /// The attribute name.
        name: String,
        /// The attribute name's span.
        span: Span,
    },
    /// A required attribute is absent.
    MissingAttr {
        /// The node kind.
        kind: NodeKind,
        /// The missing attribute.
        name: &'static str,
        /// The node header.
        span: Span,
    },
    /// An attribute holds the wrong value type.
    TypeMismatch {
        /// The attribute name.
        attr: String,
        /// The type the schema wants.
        expected: &'static str,
        /// The type that was written.
        found: &'static str,
        /// The value's span.
        span: Span,
    },
    /// An attribute's value is the right type but out of range / not one of
    /// the allowed words.
    BadValue {
        /// The attribute name.
        attr: String,
        /// What is wrong with it.
        message: String,
        /// The value's span.
        span: Span,
    },
}

impl SemanticError {
    /// The span the error is anchored at.
    pub fn span(&self) -> Span {
        match self {
            SemanticError::DuplicateNode { span, .. }
            | SemanticError::DanglingEdge { span, .. }
            | SemanticError::Cycle { span, .. }
            | SemanticError::BadEdgeKind { span, .. }
            | SemanticError::UnsatisfiedRequires { span, .. }
            | SemanticError::UnknownModel { span, .. }
            | SemanticError::UnknownPlatform { span, .. }
            | SemanticError::UnknownAttr { span, .. }
            | SemanticError::MissingAttr { span, .. }
            | SemanticError::TypeMismatch { span, .. }
            | SemanticError::BadValue { span, .. } => *span,
        }
    }

    /// Renders as a [`Diagnostic`], with secondary notes where a second
    /// location clarifies the problem.
    pub fn diagnostic(&self) -> Diagnostic {
        match self {
            SemanticError::DuplicateNode { name, span, first } => {
                Diagnostic::new(format!("duplicate node name `{name}`"), *span)
                    .with_note("first defined here", Some(*first))
            }
            SemanticError::DanglingEdge { name, span } => {
                Diagnostic::new(format!("reference to unknown node `{name}`"), *span)
            }
            SemanticError::Cycle { path, span } => Diagnostic::new(
                format!("`uses` edges form a cycle: {}", path.join(" -> ")),
                *span,
            ),
            SemanticError::BadEdgeKind {
                from,
                to,
                expected,
                span,
            } => Diagnostic::new(
                format!("a `{from}` node must use `{expected}` nodes, but this is a `{to}`"),
                *span,
            ),
            SemanticError::UnsatisfiedRequires {
                capability,
                device,
                span,
                device_span,
            } => Diagnostic::new(
                format!("required capability `{capability}` is not provided by device `{device}`"),
                *span,
            )
            .with_note(
                format!("device `{device}` declared here"),
                Some(*device_span),
            ),
            SemanticError::UnknownModel { name, span } => {
                Diagnostic::new(format!("unknown model `{name}`"), *span).with_note(
                    format!(
                        "known models: {}",
                        ModelId::all()
                            .iter()
                            .map(|m| m.info().name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    None,
                )
            }
            SemanticError::UnknownPlatform { name, span } => Diagnostic::new(
                format!("unknown platform `{name}` (expected `nx` or `agx`)"),
                *span,
            ),
            SemanticError::UnknownAttr { kind, name, span } => {
                Diagnostic::new(format!("`{kind}` nodes have no attribute `{name}`"), *span)
            }
            SemanticError::MissingAttr { kind, name, span } => Diagnostic::new(
                format!("`{kind}` node is missing required attribute `{name}`"),
                *span,
            ),
            SemanticError::TypeMismatch {
                attr,
                expected,
                found,
                span,
            } => Diagnostic::new(
                format!("attribute `{attr}` expects a {expected}, found a {found}"),
                *span,
            ),
            SemanticError::BadValue {
                attr,
                message,
                span,
            } => Diagnostic::new(format!("bad value for `{attr}`: {message}"), *span),
        }
    }
}

impl std::fmt::Display for SemanticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.diagnostic().message)
    }
}

impl std::error::Error for SemanticError {}

/// How a device's clocks are configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerMode {
    /// MAXN — clocks at their ceiling ([`trtsim_gpu::device::DeviceSpec::max_clock`]).
    Max,
    /// Clocks pinned near 600 MHz, the paper's latency-measurement setup
    /// ([`trtsim_gpu::device::DeviceSpec::pinned_clock`]).
    Pinned,
}

/// Where a model node's engines come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineSource {
    /// The shared [`trtsim_repro::support::EngineFarm`] zoo (pinned-clock
    /// builds, campaign seeds) — what the repro bins use.
    Zoo,
    /// Fresh builds with an explicit base seed, one per build index.
    Fresh {
        /// Base build seed; build `i` uses `seed + i`.
        seed: u64,
    },
}

/// Host-side glue latency applied around each inference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HostGlue {
    /// Use the model's calibrated `host_glue_us`.
    Model,
    /// Use a fixed value in microseconds.
    Fixed(f64),
}

/// A validated `device` node.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDecl {
    /// Node name.
    pub name: String,
    /// Which board.
    pub platform: Platform,
    /// Clock configuration.
    pub power: PowerMode,
    /// Declared capabilities, matched against `requires`.
    pub provides: Vec<String>,
    /// The declaration's span (for downstream diagnostics).
    pub span: Span,
}

/// A validated `model` node.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDecl {
    /// Node name.
    pub name: String,
    /// Indices into [`ScenarioGraph::devices`].
    pub devices: Vec<usize>,
    /// The networks to build.
    pub networks: Vec<ModelId>,
    /// Max batch sizes to build engines for.
    pub batches: Vec<u32>,
    /// Engine provenance.
    pub source: EngineSource,
    /// Engine builds per (network, batch, device) combination.
    pub builds: u32,
    /// Host glue applied by latency traffic.
    pub host_glue: HostGlue,
}

/// What a `traffic` node drives.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficKind {
    /// Closed-loop single-stream latency measurement
    /// ([`trtsim_core::ExecutionContext::measure_latency`]).
    Latency {
        /// Timed runs per engine.
        runs: u32,
        /// Per-run jitter SD passed to `TimingOptions`.
        jitter_sd: f64,
        /// Also compute the framework (unoptimized) latency per network.
        compare_unoptimized: bool,
    },
    /// Closed-loop serving: submit `frames` requests, then drain
    /// ([`trtsim_core::serving::InferenceServer`]).
    Closed {
        /// Requests submitted.
        frames: u32,
        /// Worker contexts.
        workers: u32,
        /// Queue capacity.
        queue: u32,
        /// Batch window; `f64::INFINITY` = fill batches completely.
        timeout_us: f64,
    },
    /// Open-loop serving with Poisson arrivals
    /// ([`trtsim_core::serving::ServerConfig::with_poisson_arrivals`]).
    Poisson {
        /// Requests submitted.
        frames: u32,
        /// Worker contexts.
        workers: u32,
        /// Queue capacity.
        queue: u32,
        /// Mean inter-arrival gap in microseconds.
        period_us: f64,
        /// Arrival-process seed.
        seed: u64,
        /// Per-request latency deadline, µs. When set the server runs
        /// predictively: SLO-aware batching plus deadline-miss accounting
        /// ([`trtsim_core::serving::ServerConfig::with_deadline_us`]).
        deadline_us: Option<f64>,
    },
    /// Open-loop fleet serving: every device the traffic's models use
    /// becomes one board of a [`trtsim_core::fleet::Fleet`], and a shared
    /// `trtsim_data::traffic::ArrivalTrace` is replayed through the router.
    Fleet {
        /// Arrival-trace shape.
        trace: FleetTrace,
        /// Requests in the trace.
        frames: u32,
        /// Worker contexts per replica.
        workers: u32,
        /// Queue capacity per replica.
        queue: u32,
        /// Trace seed.
        seed: u64,
        /// Tenant name attributed to the trace, if any.
        tenant: Option<String>,
        /// Per-request latency deadline, µs. When set the fleet routes with
        /// its shared learned model and every replica runs deadline-based
        /// admission ([`trtsim_core::fleet::FleetConfig::with_predictive`]).
        deadline_us: Option<f64>,
    },
    /// Closed-form multi-stream saturation sweep — the paper's Figures 3/4
    /// ceiling experiment ([`trtsim_gpu::contention::sweep`]).
    Concurrency,
}

/// The arrival-trace shape a fleet traffic node replays.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetTrace {
    /// Constant-rate Poisson process (`period_us` mean gap).
    Poisson {
        /// Mean inter-arrival gap, µs.
        period_us: f64,
    },
    /// Sinusoidal day/night rate swing between `period_us` (trough) and
    /// `peak_period_us` (crest) over `cycle_us`.
    Diurnal {
        /// Mean gap at the quietest point, µs.
        period_us: f64,
        /// Mean gap at the busiest point, µs.
        peak_period_us: f64,
        /// Full cycle length, µs.
        cycle_us: f64,
    },
    /// Square-wave bursts: `peak_period_us` gaps inside the burst window,
    /// `period_us` gaps outside.
    Burst {
        /// Mean gap outside bursts, µs.
        period_us: f64,
        /// Mean gap inside bursts, µs.
        peak_period_us: f64,
        /// Full cycle length, µs.
        cycle_us: f64,
        /// Fraction of each cycle spent bursting, in `(0, 1]`.
        burst_fraction: f64,
    },
}

/// A validated `traffic` node.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficDecl {
    /// Node name.
    pub name: String,
    /// Indices into [`ScenarioGraph::models`].
    pub models: Vec<usize>,
    /// What the source does.
    pub kind: TrafficKind,
}

/// A validated `assert` node: a bound over a traffic node's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertDecl {
    /// Node name.
    pub name: String,
    /// Indices into [`ScenarioGraph::traffic`].
    pub traffic: Vec<usize>,
    /// Which metric to bound (e.g. `fps`, `p99_us`).
    pub metric: String,
    /// Inclusive lower bound.
    pub min: Option<f64>,
    /// Inclusive upper bound.
    pub max: Option<f64>,
}

/// The validated, index-linked scenario graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGraph {
    /// Scenario name from the header.
    pub name: String,
    /// Device nodes.
    pub devices: Vec<DeviceDecl>,
    /// Model nodes.
    pub models: Vec<ModelDecl>,
    /// Traffic nodes.
    pub traffic: Vec<TrafficDecl>,
    /// Assertion nodes.
    pub asserts: Vec<AssertDecl>,
}

/// Metric names an `assert` node may bound; the driver produces exactly
/// these keys per experiment unit.
pub const METRICS: &[&str] = &[
    "fps",
    "mean_us",
    "p50_us",
    "p90_us",
    "p95_us",
    "p99_us",
    "max_us",
    "gr3d_percent",
    "batches",
    "unoptimized_fps",
    "gain",
    "completed",
    "rejected",
    "accepted",
    "dropped",
    "devices",
    "min_device_share",
    "max_device_share",
    "max_threads",
    "deadline_missed",
    "deadline_miss_rate",
];

/// Normalizes a model/platform word for matching: lowercase, alphanumerics
/// only, so `ResNet-18`, `resnet18`, and `resnet_18` all agree.
fn normalize(word: &str) -> String {
    word.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

fn resolve_model(word: &str) -> Option<ModelId> {
    let want = normalize(word);
    ModelId::all()
        .into_iter()
        .find(|m| normalize(m.info().name) == want)
}

fn resolve_platform(word: &str) -> Option<Platform> {
    match normalize(word).as_str() {
        "nx" => Some(Platform::Nx),
        "agx" => Some(Platform::Agx),
        _ => None,
    }
}

/// The attribute names each node kind accepts.
fn known_attrs(kind: NodeKind) -> &'static [&'static str] {
    match kind {
        NodeKind::Device => &["platform", "power", "provides"],
        NodeKind::Model => &[
            "uses",
            "network",
            "networks",
            "batch",
            "batches",
            "source",
            "seed",
            "builds",
            "host_glue",
            "requires",
        ],
        NodeKind::Traffic => &[
            "uses",
            "kind",
            "runs",
            "jitter_sd",
            "compare_unoptimized",
            "frames",
            "workers",
            "queue",
            "timeout_us",
            "period_us",
            "seed",
            "trace",
            "peak_period_us",
            "cycle_us",
            "burst_fraction",
            "tenant",
            "deadline_us",
            "requires",
        ],
        NodeKind::Assert => &["uses", "metric", "min", "max"],
    }
}

struct Checker<'a> {
    ast: &'a ScenarioAst,
    errors: Vec<SemanticError>,
    /// name → node index, first declaration wins.
    by_name: std::collections::HashMap<&'a str, usize>,
}

impl<'a> Checker<'a> {
    fn node(&self, index: usize) -> &'a Node {
        &self.ast.nodes[index]
    }

    /// A word-valued attribute (bare identifier or string).
    fn word(&mut self, node: &Node, attr: &str) -> Option<Spanned<String>> {
        let a = node.attr(attr)?;
        match &a.value.value {
            Value::Ident(w) => Some(Spanned::new(w.clone(), a.value.span)),
            Value::Str(s) => Some(Spanned::new(s.clone(), a.value.span)),
            other => {
                self.errors.push(SemanticError::TypeMismatch {
                    attr: attr.to_string(),
                    expected: "word (identifier or string)",
                    found: other.type_name(),
                    span: a.value.span,
                });
                None
            }
        }
    }

    fn num(&mut self, node: &Node, attr: &str) -> Option<Spanned<f64>> {
        let a = node.attr(attr)?;
        match &a.value.value {
            Value::Num(n) => Some(Spanned::new(*n, a.value.span)),
            other => {
                self.errors.push(SemanticError::TypeMismatch {
                    attr: attr.to_string(),
                    expected: "number",
                    found: other.type_name(),
                    span: a.value.span,
                });
                None
            }
        }
    }

    fn boolean(&mut self, node: &Node, attr: &str) -> Option<Spanned<bool>> {
        let a = node.attr(attr)?;
        match &a.value.value {
            Value::Bool(b) => Some(Spanned::new(*b, a.value.span)),
            other => {
                self.errors.push(SemanticError::TypeMismatch {
                    attr: attr.to_string(),
                    expected: "bool",
                    found: other.type_name(),
                    span: a.value.span,
                });
                None
            }
        }
    }

    /// A list-valued attribute; a lone scalar is accepted as a 1-list.
    fn list(&mut self, node: &Node, attr: &str) -> Option<Vec<Spanned<Value>>> {
        let a = node.attr(attr)?;
        match &a.value.value {
            Value::List(items) => Some(items.clone()),
            _ => Some(vec![a.value.clone()]),
        }
    }

    /// A list of words (for `uses`, `requires`, `provides`, `networks`).
    fn word_list(&mut self, node: &Node, attr: &str) -> Vec<Spanned<String>> {
        let Some(items) = self.list(node, attr) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for item in items {
            match &item.value {
                Value::Ident(w) => out.push(Spanned::new(w.clone(), item.span)),
                Value::Str(s) => out.push(Spanned::new(s.clone(), item.span)),
                other => self.errors.push(SemanticError::TypeMismatch {
                    attr: attr.to_string(),
                    expected: "word (identifier or string)",
                    found: other.type_name(),
                    span: item.span,
                }),
            }
        }
        out
    }

    /// A positive-integer attribute with a default.
    fn count(&mut self, node: &Node, attr: &str, default: u32) -> u32 {
        match self.num(node, attr) {
            Some(n) => self.as_count(attr, n).unwrap_or(default),
            None => default,
        }
    }

    fn as_count(&mut self, attr: &str, n: Spanned<f64>) -> Option<u32> {
        if n.value >= 1.0 && n.value.fract() == 0.0 && n.value <= u32::MAX as f64 {
            Some(n.value as u32)
        } else {
            self.errors.push(SemanticError::BadValue {
                attr: attr.to_string(),
                message: format!("expected a positive integer, got {}", n.value),
                span: n.span,
            });
            None
        }
    }

    fn as_seed(&mut self, attr: &str, n: Spanned<f64>) -> Option<u64> {
        if n.value >= 0.0 && n.value.fract() == 0.0 && n.value <= u64::MAX as f64 {
            Some(n.value as u64)
        } else {
            self.errors.push(SemanticError::BadValue {
                attr: attr.to_string(),
                message: format!("expected a non-negative integer, got {}", n.value),
                span: n.span,
            });
            None
        }
    }

    /// An optional `deadline_us` attribute: positive and finite, or an
    /// accumulated [`SemanticError::BadValue`].
    fn deadline_us(&mut self, node: &Node) -> Option<f64> {
        match self.num(node, "deadline_us") {
            Some(n) if n.value > 0.0 && n.value.is_finite() => Some(n.value),
            Some(n) => {
                self.errors.push(SemanticError::BadValue {
                    attr: "deadline_us".into(),
                    message: format!(
                        "deadline must be a positive finite µs count, got {}",
                        n.value
                    ),
                    span: n.span,
                });
                None
            }
            None => None,
        }
    }

    /// Parses a fleet traffic node's arrival-trace shape: `trace =` word
    /// (default `poisson`) plus the shape's rate attributes, with
    /// `period_us` (already validated by the caller) as the base gap.
    fn fleet_trace(&mut self, node: &Node, period_us: f64) -> Option<FleetTrace> {
        let positive = |checker: &mut Self, attr: &'static str, default: f64| -> f64 {
            match checker.num(node, attr) {
                Some(n) if n.value > 0.0 => n.value,
                Some(n) => {
                    checker.errors.push(SemanticError::BadValue {
                        attr: attr.into(),
                        message: format!("expected a positive number, got {}", n.value),
                        span: n.span,
                    });
                    default
                }
                None => default,
            }
        };
        let word = self.word(node, "trace");
        let shape = word
            .as_ref()
            .map_or_else(|| "poisson".to_string(), |w| normalize(&w.value));
        match shape.as_str() {
            "poisson" => Some(FleetTrace::Poisson { period_us }),
            "diurnal" => Some(FleetTrace::Diurnal {
                period_us,
                peak_period_us: positive(self, "peak_period_us", period_us / 10.0),
                cycle_us: positive(self, "cycle_us", 200_000.0),
            }),
            "burst" => {
                let burst_fraction = match self.num(node, "burst_fraction") {
                    Some(n) if n.value > 0.0 && n.value <= 1.0 => n.value,
                    Some(n) => {
                        self.errors.push(SemanticError::BadValue {
                            attr: "burst_fraction".into(),
                            message: format!("expected a fraction in (0, 1], got {}", n.value),
                            span: n.span,
                        });
                        0.25
                    }
                    None => 0.25,
                };
                Some(FleetTrace::Burst {
                    period_us,
                    peak_period_us: positive(self, "peak_period_us", period_us / 10.0),
                    cycle_us: positive(self, "cycle_us", 200_000.0),
                    burst_fraction,
                })
            }
            _ => {
                let w = word.expect("non-default shape implies the attr was present");
                self.errors.push(SemanticError::BadValue {
                    attr: "trace".into(),
                    message: format!(
                        "expected `poisson`, `diurnal`, or `burst`, got `{}`",
                        w.value
                    ),
                    span: w.span,
                });
                None
            }
        }
    }

    /// Resolves a node's `uses` edges to indices, checking existence and
    /// target kind. Dangling or wrong-kind references are dropped (after
    /// reporting) so later passes see only valid indices.
    fn resolve_uses(&mut self, node: &Node) -> Vec<(usize, Span)> {
        let expected = node.kind.value.uses_target();
        let refs = self.word_list(node, "uses");
        let mut out = Vec::new();
        for r in refs {
            let Some(&target) = self.by_name.get(r.value.as_str()) else {
                self.errors.push(SemanticError::DanglingEdge {
                    name: r.value,
                    span: r.span,
                });
                continue;
            };
            let target_kind = self.node(target).kind.value;
            match expected {
                Some(expected) if target_kind != expected => {
                    self.errors.push(SemanticError::BadEdgeKind {
                        from: node.kind.value,
                        to: target_kind,
                        expected,
                        span: r.span,
                    });
                }
                _ => out.push((target, r.span)),
            }
        }
        out
    }
}

/// Detects cycles in the raw `uses` edges (over all node kinds, before any
/// kind restriction) with a three-color DFS, reporting each cycle once.
fn check_cycles(
    ast: &ScenarioAst,
    by_name: &std::collections::HashMap<&str, usize>,
) -> Vec<SemanticError> {
    // edges[i] = (target index, span of the reference)
    let mut edges: Vec<Vec<(usize, Span)>> = vec![Vec::new(); ast.nodes.len()];
    for (i, node) in ast.nodes.iter().enumerate() {
        let Some(attr) = node.attr("uses") else {
            continue;
        };
        let items: Vec<Spanned<Value>> = match &attr.value.value {
            Value::List(items) => items.clone(),
            _ => vec![attr.value.clone()],
        };
        for item in items {
            let word = match &item.value {
                Value::Ident(w) => w.as_str(),
                Value::Str(s) => s.as_str(),
                _ => continue,
            };
            if let Some(&j) = by_name.get(word) {
                edges[i].push((j, item.span));
            }
        }
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; ast.nodes.len()];
    let mut stack: Vec<usize> = Vec::new();
    let mut errors = Vec::new();
    fn dfs(
        i: usize,
        ast: &ScenarioAst,
        edges: &[Vec<(usize, Span)>],
        color: &mut [Color],
        stack: &mut Vec<usize>,
        errors: &mut Vec<SemanticError>,
    ) {
        color[i] = Color::Grey;
        stack.push(i);
        for &(j, span) in &edges[i] {
            match color[j] {
                Color::White => dfs(j, ast, edges, color, stack, errors),
                Color::Grey => {
                    let start = stack
                        .iter()
                        .position(|&n| n == j)
                        .expect("grey is on stack");
                    let mut path: Vec<String> = stack[start..]
                        .iter()
                        .map(|&n| ast.nodes[n].name.value.clone())
                        .collect();
                    path.push(ast.nodes[j].name.value.clone());
                    errors.push(SemanticError::Cycle { path, span });
                }
                Color::Black => {}
            }
        }
        stack.pop();
        color[i] = Color::Black;
    }
    for i in 0..ast.nodes.len() {
        if color[i] == Color::White {
            dfs(i, ast, &edges, &mut color, &mut stack, &mut errors);
        }
    }
    errors
}

/// A kind-local declaration awaiting edge remapping: the decl itself, its
/// `uses` targets as (global node index, edge span), and its raw `requires`
/// capability idents.
type Pending<T> = (T, Vec<(usize, Span)>, Vec<Spanned<String>>);

/// Validates a parsed scenario.
///
/// # Errors
///
/// Returns every accumulated [`SemanticError`] (never empty on `Err`).
pub fn validate(ast: &ScenarioAst) -> Result<ScenarioGraph, Vec<SemanticError>> {
    let mut checker = Checker {
        ast,
        errors: Vec::new(),
        by_name: std::collections::HashMap::new(),
    };

    // Pass 1: names must be unique; first declaration wins for resolution.
    for (i, node) in ast.nodes.iter().enumerate() {
        if let Some(&first) = checker.by_name.get(node.name.value.as_str()) {
            checker.errors.push(SemanticError::DuplicateNode {
                name: node.name.value.clone(),
                span: node.name.span,
                first: ast.nodes[first].name.span,
            });
        } else {
            checker.by_name.insert(node.name.value.as_str(), i);
        }
    }

    // Pass 2: cycles over the raw edge set.
    let cycle_errors = check_cycles(ast, &checker.by_name);
    checker.errors.extend(cycle_errors);

    // Pass 3: attribute schema — unknown attribute names per kind.
    for node in &ast.nodes {
        for attr in &node.attrs {
            if !known_attrs(node.kind.value).contains(&attr.name.value.as_str()) {
                checker.errors.push(SemanticError::UnknownAttr {
                    kind: node.kind.value,
                    name: attr.name.value.clone(),
                    span: attr.name.span,
                });
            }
        }
    }

    // Pass 4: per-kind typing and reference resolution. Nodes are gathered
    // into kind-local vectors; `uses` indices are remapped from global node
    // index to kind-local index at the end.
    let mut devices: Vec<DeviceDecl> = Vec::new();
    let mut device_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut models: Vec<Pending<ModelDecl>> = Vec::new();
    let mut model_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut traffic: Vec<Pending<TrafficDecl>> = Vec::new();
    let mut traffic_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut asserts: Vec<(AssertDecl, Vec<(usize, Span)>)> = Vec::new();

    for (i, node) in ast.nodes.iter().enumerate() {
        // Skip shadowed duplicates: only the first declaration is compiled.
        if checker.by_name.get(node.name.value.as_str()) != Some(&i) {
            continue;
        }
        match node.kind.value {
            NodeKind::Device => {
                let platform = match checker.word(node, "platform") {
                    Some(w) => match resolve_platform(&w.value) {
                        Some(p) => Some(p),
                        None => {
                            checker.errors.push(SemanticError::UnknownPlatform {
                                name: w.value,
                                span: w.span,
                            });
                            None
                        }
                    },
                    None => {
                        if node.attr("platform").is_none() {
                            checker.errors.push(SemanticError::MissingAttr {
                                kind: NodeKind::Device,
                                name: "platform",
                                span: node.name.span,
                            });
                        }
                        None
                    }
                };
                let power = match checker.word(node, "power") {
                    Some(w) => match normalize(&w.value).as_str() {
                        "max" => PowerMode::Max,
                        "pinned" => PowerMode::Pinned,
                        _ => {
                            checker.errors.push(SemanticError::BadValue {
                                attr: "power".into(),
                                message: format!("expected `max` or `pinned`, got `{}`", w.value),
                                span: w.span,
                            });
                            PowerMode::Max
                        }
                    },
                    None => PowerMode::Max,
                };
                let provides = checker
                    .word_list(node, "provides")
                    .into_iter()
                    .map(|w| w.value)
                    .collect();
                if let Some(platform) = platform {
                    device_of.insert(i, devices.len());
                    devices.push(DeviceDecl {
                        name: node.name.value.clone(),
                        platform,
                        power,
                        provides,
                        span: node.name.span,
                    });
                }
            }
            NodeKind::Model => {
                let uses = checker.resolve_uses(node);
                if node.attr("uses").is_none() {
                    checker.errors.push(SemanticError::MissingAttr {
                        kind: NodeKind::Model,
                        name: "uses",
                        span: node.name.span,
                    });
                }
                let network_attr = if node.attr("networks").is_some() {
                    "networks"
                } else {
                    "network"
                };
                let mut networks = Vec::new();
                if node.attr(network_attr).is_none() {
                    checker.errors.push(SemanticError::MissingAttr {
                        kind: NodeKind::Model,
                        name: "network",
                        span: node.name.span,
                    });
                } else {
                    for w in checker.word_list(node, network_attr) {
                        match resolve_model(&w.value) {
                            Some(m) => networks.push(m),
                            None => checker.errors.push(SemanticError::UnknownModel {
                                name: w.value,
                                span: w.span,
                            }),
                        }
                    }
                }
                let batch_attr = if node.attr("batches").is_some() {
                    "batches"
                } else {
                    "batch"
                };
                let mut batches = Vec::new();
                if node.attr(batch_attr).is_some() {
                    let items = checker.list(node, batch_attr).unwrap_or_default();
                    for item in items {
                        match item.value {
                            Value::Num(n) => {
                                if let Some(b) =
                                    checker.as_count(batch_attr, Spanned::new(n, item.span))
                                {
                                    batches.push(b);
                                }
                            }
                            ref other => checker.errors.push(SemanticError::TypeMismatch {
                                attr: batch_attr.to_string(),
                                expected: "number",
                                found: other.type_name(),
                                span: item.span,
                            }),
                        }
                    }
                }
                if batches.is_empty() {
                    batches.push(1);
                }
                let source = match checker.word(node, "source") {
                    Some(w) => match normalize(&w.value).as_str() {
                        "zoo" => EngineSource::Zoo,
                        "fresh" => {
                            let seed = checker
                                .num(node, "seed")
                                .and_then(|n| checker.as_seed("seed", n))
                                .unwrap_or(0);
                            EngineSource::Fresh { seed }
                        }
                        _ => {
                            checker.errors.push(SemanticError::BadValue {
                                attr: "source".into(),
                                message: format!("expected `zoo` or `fresh`, got `{}`", w.value),
                                span: w.span,
                            });
                            EngineSource::Zoo
                        }
                    },
                    None => EngineSource::Zoo,
                };
                let builds = checker.count(node, "builds", 1);
                let host_glue = match node.attr("host_glue") {
                    None => HostGlue::Model,
                    Some(a) => match &a.value.value {
                        Value::Num(n) if *n >= 0.0 => HostGlue::Fixed(*n),
                        Value::Num(n) => {
                            checker.errors.push(SemanticError::BadValue {
                                attr: "host_glue".into(),
                                message: format!("glue microseconds cannot be negative ({n})"),
                                span: a.value.span,
                            });
                            HostGlue::Model
                        }
                        Value::Ident(w) | Value::Str(w) if normalize(w) == "model" => {
                            HostGlue::Model
                        }
                        other => {
                            checker.errors.push(SemanticError::TypeMismatch {
                                attr: "host_glue".into(),
                                expected: "number of microseconds or `model`",
                                found: other.type_name(),
                                span: a.value.span,
                            });
                            HostGlue::Model
                        }
                    },
                };
                let requires = checker.word_list(node, "requires");
                model_of.insert(i, models.len());
                models.push((
                    ModelDecl {
                        name: node.name.value.clone(),
                        devices: Vec::new(),
                        networks,
                        batches,
                        source,
                        builds,
                        host_glue,
                    },
                    uses,
                    requires,
                ));
            }
            NodeKind::Traffic => {
                let uses = checker.resolve_uses(node);
                if node.attr("uses").is_none() {
                    checker.errors.push(SemanticError::MissingAttr {
                        kind: NodeKind::Traffic,
                        name: "uses",
                        span: node.name.span,
                    });
                }
                let kind_word = checker.word(node, "kind");
                if node.attr("kind").is_none() {
                    checker.errors.push(SemanticError::MissingAttr {
                        kind: NodeKind::Traffic,
                        name: "kind",
                        span: node.name.span,
                    });
                }
                let kind = match kind_word {
                    Some(w) => match normalize(&w.value).as_str() {
                        "latency" => Some(TrafficKind::Latency {
                            runs: checker.count(node, "runs", 30),
                            jitter_sd: checker
                                .num(node, "jitter_sd")
                                .map(|n| n.value)
                                .unwrap_or(0.0),
                            compare_unoptimized: checker
                                .boolean(node, "compare_unoptimized")
                                .map(|b| b.value)
                                .unwrap_or(false),
                        }),
                        "closed" => Some(TrafficKind::Closed {
                            frames: checker.count(node, "frames", 256),
                            workers: checker.count(node, "workers", 4),
                            queue: checker.count(node, "queue", 256),
                            timeout_us: match node.attr("timeout_us") {
                                None => f64::INFINITY,
                                Some(a) => match &a.value.value {
                                    Value::Num(n) if *n >= 0.0 => *n,
                                    Value::Ident(w) | Value::Str(w) if normalize(w) == "inf" => {
                                        f64::INFINITY
                                    }
                                    other => {
                                        checker.errors.push(SemanticError::TypeMismatch {
                                            attr: "timeout_us".into(),
                                            expected: "non-negative number or `inf`",
                                            found: other.type_name(),
                                            span: a.value.span,
                                        });
                                        f64::INFINITY
                                    }
                                },
                            },
                        }),
                        "poisson" => {
                            let period = match checker.num(node, "period_us") {
                                Some(n) if n.value > 0.0 => Some(n.value),
                                Some(n) => {
                                    checker.errors.push(SemanticError::BadValue {
                                        attr: "period_us".into(),
                                        message: format!(
                                            "mean inter-arrival gap must be positive, got {}",
                                            n.value
                                        ),
                                        span: n.span,
                                    });
                                    None
                                }
                                None => {
                                    if node.attr("period_us").is_none() {
                                        checker.errors.push(SemanticError::MissingAttr {
                                            kind: NodeKind::Traffic,
                                            name: "period_us",
                                            span: node.name.span,
                                        });
                                    }
                                    None
                                }
                            };
                            let deadline_us = checker.deadline_us(node);
                            period.map(|period_us| TrafficKind::Poisson {
                                frames: checker.count(node, "frames", 256),
                                workers: checker.count(node, "workers", 4),
                                queue: checker.count(node, "queue", 256),
                                period_us,
                                seed: checker
                                    .num(node, "seed")
                                    .and_then(|n| checker.as_seed("seed", n))
                                    .unwrap_or(1),
                                deadline_us,
                            })
                        }
                        "fleet" => {
                            let period = match checker.num(node, "period_us") {
                                Some(n) if n.value > 0.0 => Some(n.value),
                                Some(n) => {
                                    checker.errors.push(SemanticError::BadValue {
                                        attr: "period_us".into(),
                                        message: format!(
                                            "mean inter-arrival gap must be positive, got {}",
                                            n.value
                                        ),
                                        span: n.span,
                                    });
                                    None
                                }
                                None => {
                                    if node.attr("period_us").is_none() {
                                        checker.errors.push(SemanticError::MissingAttr {
                                            kind: NodeKind::Traffic,
                                            name: "period_us",
                                            span: node.name.span,
                                        });
                                    }
                                    None
                                }
                            };
                            let trace = period.and_then(|p| checker.fleet_trace(node, p));
                            let deadline_us = checker.deadline_us(node);
                            trace.map(|trace| TrafficKind::Fleet {
                                trace,
                                frames: checker.count(node, "frames", 256),
                                workers: checker.count(node, "workers", 2),
                                queue: checker.count(node, "queue", 64),
                                seed: checker
                                    .num(node, "seed")
                                    .and_then(|n| checker.as_seed("seed", n))
                                    .unwrap_or(1),
                                tenant: checker.word(node, "tenant").map(|w| w.value),
                                deadline_us,
                            })
                        }
                        "concurrency" => Some(TrafficKind::Concurrency),
                        _ => {
                            checker.errors.push(SemanticError::BadValue {
                                attr: "kind".into(),
                                message: format!(
                                    "expected `latency`, `closed`, `poisson`, `fleet`, or \
                                     `concurrency`, got `{}`",
                                    w.value
                                ),
                                span: w.span,
                            });
                            None
                        }
                    },
                    None => None,
                };
                let requires = checker.word_list(node, "requires");
                if let Some(kind) = kind {
                    traffic_of.insert(i, traffic.len());
                    traffic.push((
                        TrafficDecl {
                            name: node.name.value.clone(),
                            models: Vec::new(),
                            kind,
                        },
                        uses,
                        requires,
                    ));
                }
            }
            NodeKind::Assert => {
                let uses = checker.resolve_uses(node);
                if node.attr("uses").is_none() {
                    checker.errors.push(SemanticError::MissingAttr {
                        kind: NodeKind::Assert,
                        name: "uses",
                        span: node.name.span,
                    });
                }
                let metric = match checker.word(node, "metric") {
                    Some(w) => {
                        if METRICS.contains(&w.value.as_str()) {
                            w.value
                        } else {
                            checker.errors.push(SemanticError::BadValue {
                                attr: "metric".into(),
                                message: format!(
                                    "unknown metric `{}` (known: {})",
                                    w.value,
                                    METRICS.join(", ")
                                ),
                                span: w.span,
                            });
                            w.value
                        }
                    }
                    None => {
                        if node.attr("metric").is_none() {
                            checker.errors.push(SemanticError::MissingAttr {
                                kind: NodeKind::Assert,
                                name: "metric",
                                span: node.name.span,
                            });
                        }
                        String::new()
                    }
                };
                let min = checker.num(node, "min").map(|n| n.value);
                let max = checker.num(node, "max").map(|n| n.value);
                if node.attr("min").is_none() && node.attr("max").is_none() {
                    checker.errors.push(SemanticError::BadValue {
                        attr: "min".into(),
                        message: "an assert needs at least one of `min`, `max`".into(),
                        span: node.name.span,
                    });
                }
                if let (Some(lo), Some(hi)) = (min, max) {
                    if lo > hi {
                        checker.errors.push(SemanticError::BadValue {
                            attr: "max".into(),
                            message: format!("empty bound: min {lo} > max {hi}"),
                            span: node.attr("max").expect("checked above").value.span,
                        });
                    }
                }
                asserts.push((
                    AssertDecl {
                        name: node.name.value.clone(),
                        traffic: Vec::new(),
                        metric,
                        min,
                        max,
                    },
                    uses,
                ));
            }
        }
    }

    // Pass 5: remap edges to kind-local indices and check `requires`
    // against the `provides` of every device the node (transitively) runs
    // on. Edges whose target failed its own validation are dropped —
    // the target's error already explains why.
    let mut requires_errors: Vec<SemanticError> = Vec::new();
    let mut models: Vec<ModelDecl> = models
        .into_iter()
        .map(|(mut decl, uses, requires)| {
            for (target, _span) in uses {
                if let Some(&d) = device_of.get(&target) {
                    decl.devices.push(d);
                }
            }
            for req in requires {
                for &d in &decl.devices {
                    let device = &devices[d];
                    if !device.provides.iter().any(|p| p == &req.value) {
                        requires_errors.push(SemanticError::UnsatisfiedRequires {
                            capability: req.value.clone(),
                            device: device.name.clone(),
                            span: req.span,
                            device_span: device.span,
                        });
                    }
                }
            }
            decl
        })
        .collect();
    let traffic: Vec<TrafficDecl> = traffic
        .into_iter()
        .map(|(mut decl, uses, requires)| {
            for (target, _span) in uses {
                if let Some(&m) = model_of.get(&target) {
                    decl.models.push(m);
                }
            }
            for req in requires {
                for &m in &decl.models {
                    for &d in &models[m].devices {
                        let device = &devices[d];
                        if !device.provides.iter().any(|p| p == &req.value) {
                            requires_errors.push(SemanticError::UnsatisfiedRequires {
                                capability: req.value.clone(),
                                device: device.name.clone(),
                                span: req.span,
                                device_span: device.span,
                            });
                        }
                    }
                }
            }
            decl
        })
        .collect();
    checker.errors.extend(requires_errors);
    let asserts: Vec<AssertDecl> = asserts
        .into_iter()
        .map(|(mut decl, uses)| {
            for (target, _span) in uses {
                if let Some(&t) = traffic_of.get(&target) {
                    decl.traffic.push(t);
                }
            }
            decl
        })
        .collect();
    // A model with no surviving device edge can't run; same for traffic.
    for decl in &mut models {
        decl.devices.dedup();
    }

    if checker.errors.is_empty() {
        Ok(ScenarioGraph {
            name: ast.name.value.clone(),
            devices,
            models,
            traffic,
            asserts,
        })
    } else {
        Err(checker.errors)
    }
}
