//! The scenario AST — the parser's output and the canonical printer.
//!
//! A scenario is a named graph of four node kinds. Each node is written as
//!
//! ```text
//! <kind> <name> {
//!   <attr> = <value>
//!   ...
//! }
//! ```
//!
//! and edges are expressed with the `uses = [other, ...]` attribute, whose
//! values are bare identifiers referring to other nodes by name. The AST is
//! deliberately untyped — attribute names and value types are checked by
//! [`mod@crate::validate`], which accumulates every problem instead of stopping
//! at the first — so a file with a bad attribute still parses and every
//! error in it can be reported in one pass.
//!
//! [`ScenarioAst::print`] renders the canonical form: stable indentation,
//! one attribute per line, shortest-round-trip float formatting. The
//! property tests pin `parse ∘ print` as the identity on printed form.

use crate::span::{Span, Spanned};

/// The four node kinds a scenario graph is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A simulated board at a power mode.
    Device,
    /// A network (or list of networks) built at a precision and batch sizes.
    Model,
    /// A traffic source driving models: closed-loop latency runs, a
    /// closed-loop serving sweep, or a Poisson open-loop feed.
    Traffic,
    /// A bound over the metrics a traffic node produces.
    Assert,
}

impl NodeKind {
    /// Every kind, in declaration-order convention.
    pub const ALL: [NodeKind; 4] = [
        NodeKind::Device,
        NodeKind::Model,
        NodeKind::Traffic,
        NodeKind::Assert,
    ];

    /// The source keyword for this kind.
    pub fn keyword(self) -> &'static str {
        match self {
            NodeKind::Device => "device",
            NodeKind::Model => "model",
            NodeKind::Traffic => "traffic",
            NodeKind::Assert => "assert",
        }
    }

    /// Parses a keyword into a kind.
    pub fn from_keyword(word: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.keyword() == word)
    }

    /// The node kind this kind's `uses` edges must point at, if any.
    pub fn uses_target(self) -> Option<NodeKind> {
        match self {
            NodeKind::Device => None,
            NodeKind::Model => Some(NodeKind::Device),
            NodeKind::Traffic => Some(NodeKind::Model),
            NodeKind::Assert => Some(NodeKind::Traffic),
        }
    }
}

impl std::fmt::Display for NodeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.keyword())
    }
}

/// An attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A double-quoted string.
    Str(String),
    /// A number (integers and floats share one representation).
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A bare identifier — a reference to another node by name.
    Ident(String),
    /// A bracketed list of values.
    List(Vec<Spanned<Value>>),
}

impl Value {
    /// Human-readable type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Num(_) => "number",
            Value::Bool(_) => "bool",
            Value::Ident(_) => "identifier",
            Value::List(_) => "list",
        }
    }

    fn print_into(&self, out: &mut String) {
        match self {
            Value::Str(s) => {
                out.push('"');
                for ch in s.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        _ => out.push(ch),
                    }
                }
                out.push('"');
            }
            // `{}` on f64 prints the shortest digits that round-trip, so a
            // printed scenario re-parses to bit-identical numbers.
            Value::Num(n) => out.push_str(&format!("{n}")),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Ident(name) => out.push_str(name),
            Value::List(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.value.print_into(out);
                }
                out.push(']');
            }
        }
    }
}

/// One `name = value` attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attr {
    /// Attribute name.
    pub name: Spanned<String>,
    /// Attribute value.
    pub value: Spanned<Value>,
}

/// One node statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node kind (`device` / `model` / `traffic` / `assert`).
    pub kind: Spanned<NodeKind>,
    /// The node's graph-unique name.
    pub name: Spanned<String>,
    /// Attributes in source order.
    pub attrs: Vec<Attr>,
    /// The whole statement.
    pub span: Span,
}

impl Node {
    /// The first attribute named `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&Attr> {
        self.attrs.iter().find(|a| a.name.value == name)
    }
}

/// A parsed scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioAst {
    /// The scenario's quoted name from the header.
    pub name: Spanned<String>,
    /// Nodes in source order.
    pub nodes: Vec<Node>,
    /// The whole scenario block.
    pub span: Span,
}

impl ScenarioAst {
    /// Renders the canonical source form; `parse(print(ast))` reproduces the
    /// AST up to spans, and printing is idempotent.
    pub fn print(&self) -> String {
        let mut out = String::new();
        out.push_str("scenario ");
        Value::Str(self.name.value.clone()).print_into(&mut out);
        out.push_str(" {\n");
        for node in &self.nodes {
            out.push_str(&format!(
                "  {} {} {{\n",
                node.kind.value.keyword(),
                node.name.value
            ));
            for attr in &node.attrs {
                out.push_str(&format!("    {} = ", attr.name.value));
                attr.value.value.print_into(&mut out);
                out.push('\n');
            }
            out.push_str("  }\n");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_keywords_round_trip() {
        for kind in NodeKind::ALL {
            assert_eq!(NodeKind::from_keyword(kind.keyword()), Some(kind));
        }
        assert_eq!(NodeKind::from_keyword("widget"), None);
    }

    #[test]
    fn printer_escapes_strings() {
        let mut out = String::new();
        Value::Str("a\"b\\c".into()).print_into(&mut out);
        assert_eq!(out, r#""a\"b\\c""#);
    }

    #[test]
    fn printer_renders_shortest_float() {
        let mut out = String::new();
        Value::Num(0.1).print_into(&mut out);
        assert_eq!(out, "0.1");
        out.clear();
        Value::Num(256.0).print_into(&mut out);
        assert_eq!(out, "256");
    }
}
