//! Report emission: [`ScenarioReport`] → markdown and shared-schema JSON.
//!
//! The JSON side reuses the [`BenchReport`] schema (`tool: trtsim-bench`,
//! `schema_version: 1`) rather than inventing a third shape: one phase per
//! executed unit (wall time, throughput, integer counters), summary keys of
//! the form `<unit label>.<metric>`, and `bit_identical` carrying whether
//! every assertion held — so the same diffing harness that tracks the bench
//! trajectory tracks scenario runs. The markdown side renders one table per
//! traffic node plus an assertions section, suitable for pasting into an
//! experiment log.

use trtsim_bench::report::{BenchReport, PhaseReport};

use crate::driver::ScenarioReport;

/// Lowers a scenario report into the shared bench-report schema.
pub fn to_bench_report(report: &ScenarioReport, mode: &str, git_rev: &str) -> BenchReport {
    let phases = report
        .units
        .iter()
        .map(|u| {
            let mut phase = PhaseReport::new(u.label.clone(), u.wall_ms);
            if let Some(fps) = u.metric("fps") {
                phase = phase.with_throughput(fps);
            }
            for (k, v) in &u.metrics {
                // Integer-valued event counts belong in `counters`; the
                // continuous metrics go to the summary map below.
                if matches!(
                    k.as_str(),
                    "batches" | "completed" | "rejected" | "accepted" | "dropped" | "devices"
                ) {
                    phase = phase.with_counter(k.clone(), *v as u64);
                }
            }
            phase.with_counter("builds", u.builds.len().max(1) as u64)
        })
        .collect();
    let mut summary: Vec<(String, f64)> = Vec::new();
    for u in &report.units {
        for (k, v) in &u.metrics {
            summary.push((format!("{}.{}", u.label, k), *v));
        }
    }
    let passed = report.asserts.iter().filter(|a| a.passed).count();
    summary.push(("asserts_passed".to_string(), passed as f64));
    summary.push((
        "asserts_failed".to_string(),
        (report.asserts.len() - passed) as f64,
    ));
    BenchReport {
        benchmark: "scenario".to_string(),
        mode: mode.to_string(),
        git_rev: git_rev.to_string(),
        threads: trtsim_util::pool::auto_threads(),
        throughput_unit: "frames_per_sec".to_string(),
        context: vec![("scenario".to_string(), report.name.clone())],
        phases,
        summary,
        bit_identical: report.passed(),
    }
}

/// Renders the report as markdown: one table per traffic node, then the
/// assertion outcomes.
pub fn to_markdown(report: &ScenarioReport) -> String {
    let mut out = format!("# Scenario `{}`\n", report.name);
    // Group units by traffic node, preserving plan order.
    let mut traffic_names: Vec<&str> = Vec::new();
    for u in &report.units {
        if !traffic_names.contains(&u.traffic.as_str()) {
            traffic_names.push(&u.traffic);
        }
    }
    for traffic in traffic_names {
        let units: Vec<_> = report
            .units
            .iter()
            .filter(|u| u.traffic == traffic)
            .collect();
        let kind = units.first().map(|u| u.kind).unwrap_or("?");
        out.push_str(&format!("\n## traffic `{traffic}` ({kind})\n\n"));
        // Columns: the union of metric keys, in first-seen order.
        let mut keys: Vec<&str> = Vec::new();
        for u in &units {
            for (k, _) in &u.metrics {
                if !keys.contains(&k.as_str()) {
                    keys.push(k);
                }
            }
        }
        out.push_str(&format!("| unit | {} |\n", keys.join(" | ")));
        out.push_str(&format!("|---|{}\n", "---|".repeat(keys.len())));
        for u in &units {
            let cells: Vec<String> = keys
                .iter()
                .map(|k| match u.metric(k) {
                    Some(v) if v.abs() >= 1000.0 => format!("{v:.0}"),
                    Some(v) => format!("{v:.2}"),
                    None => "—".to_string(),
                })
                .collect();
            out.push_str(&format!("| {} | {} |\n", u.label, cells.join(" | ")));
        }
    }
    out.push_str("\n## assertions\n\n");
    if report.asserts.is_empty() {
        out.push_str("(none)\n");
    } else {
        for a in &report.asserts {
            out.push_str(&format!(
                "- {} {}\n",
                if a.passed { "✅" } else { "❌" },
                a.render()
            ));
        }
    }
    out.push_str(&format!(
        "\nresult: **{}**\n",
        if report.passed() { "PASS" } else { "FAIL" }
    ));
    out
}
