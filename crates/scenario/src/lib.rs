//! Declarative experiment scenarios for the trtsim stack.
//!
//! Every reproduction harness used to be a hand-coded binary wiring
//! devices, models, traffic, and assertions by hand. This crate replaces
//! that pattern with data: a scenario is a `.scn` text file describing an
//! experiment *graph* —
//!
//! ```text
//! scenario "serving sweep" {
//!   device nx       { platform = nx  power = max }
//!   model  detector { uses = [nx]  network = tiny-yolov3  batches = [1, 2, 4, 8] }
//!   traffic sweep   { uses = [detector]  kind = closed  frames = 256 }
//!   assert  speedup { uses = [sweep]  metric = fps  min = 100 }
//! }
//! ```
//!
//! — and the pipeline is
//!
//! 1. [`parse`](parse::parse): hand-rolled span-tracking parser (std only),
//!    recovering at statement boundaries so one pass reports every syntax
//!    error;
//! 2. [`validate`](validate::validate): error-accumulating semantic checks
//!    (duplicate names, dangling edges, cycles, wrong-kind edges, unknown
//!    model/platform identifiers, unsatisfied `requires`) producing a typed
//!    [`ScenarioGraph`];
//! 3. [`compile`](compile::compile): lowering to a flat [`ExecutionPlan`]
//!    of fully resolved units;
//! 4. [`driver::run`]: the one generic driver, built on the existing
//!    [`EngineFarm`](trtsim_repro::support::EngineFarm),
//!    [`InferenceServer`](trtsim_core::serving::InferenceServer), and
//!    telemetry [`Registry`](trtsim_metrics::Registry);
//! 5. [`emit`]: markdown + JSON reports in the shared
//!    [`BenchReport`](trtsim_bench::report::BenchReport) schema.
//!
//! The `scenario` binary exposes the pipeline as `run` / `check` / `list`
//! subcommands; checked-in scenarios live under `scenarios/` at the repo
//! root.

pub mod ast;
pub mod compile;
pub mod driver;
pub mod emit;
pub mod parse;
pub mod span;
pub mod validate;

pub use ast::{Attr, Node, NodeKind, ScenarioAst, Value};
pub use compile::{compile, CompileOptions, ExecutionPlan, PlanAssert, PlanUnit};
pub use driver::{AssertOutcome, DriverError, ScenarioReport, UnitResult};
pub use emit::{to_bench_report, to_markdown};
pub use parse::{parse, ParseError};
pub use span::{Diagnostic, Span, Spanned};
pub use validate::{
    validate, AssertDecl, DeviceDecl, EngineSource, FleetTrace, HostGlue, ModelDecl, PowerMode,
    ScenarioGraph, SemanticError, TrafficDecl, TrafficKind, METRICS,
};

/// A failed front-end stage: every accumulated diagnostic, not just the
/// first.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// Syntax errors from [`parse::parse`].
    Parse(Vec<ParseError>),
    /// Semantic errors from [`validate::validate`].
    Validate(Vec<SemanticError>),
}

impl ScenarioError {
    /// All diagnostics, in source order.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = match self {
            ScenarioError::Parse(errors) => errors.iter().map(ParseError::diagnostic).collect(),
            ScenarioError::Validate(errors) => errors
                .iter()
                .map(SemanticError::diagnostic)
                .collect::<Vec<_>>(),
        };
        out.sort_by_key(|d| (d.span.lo, d.span.hi));
        out
    }

    /// Renders every diagnostic compiler-style against the source.
    pub fn render(&self, path: &str, src: &str) -> String {
        self.diagnostics()
            .iter()
            .map(|d| d.render(path, src))
            .collect()
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (n, stage) = match self {
            ScenarioError::Parse(e) => (e.len(), "syntax"),
            ScenarioError::Validate(e) => (e.len(), "validation"),
        };
        write!(f, "{n} {stage} error{}", if n == 1 { "" } else { "s" })
    }
}

impl std::error::Error for ScenarioError {}

/// Parses and validates a scenario source.
///
/// # Errors
///
/// Returns a [`ScenarioError`] carrying every accumulated diagnostic.
pub fn check_src(src: &str) -> Result<ScenarioGraph, ScenarioError> {
    let ast = parse::parse(src).map_err(ScenarioError::Parse)?;
    validate::validate(&ast).map_err(ScenarioError::Validate)
}

/// Parses, validates, and lowers a scenario source to an execution plan.
///
/// # Errors
///
/// Returns a [`ScenarioError`] carrying every accumulated diagnostic.
pub fn compile_src(src: &str, opts: CompileOptions) -> Result<ExecutionPlan, ScenarioError> {
    Ok(compile::compile(&check_src(src)?, opts))
}
