//! The `.scn` parser: a hand-rolled span-tracking lexer and
//! recursive-descent parser with error recovery.
//!
//! Following the workspace's std-only idiom (the RFC 8259 writer in
//! `trtsim-bench` is the precedent), there is no parser generator and no
//! regex: the lexer walks bytes and hands out [`Spanned`] tokens, and the
//! parser keeps going after an error by synchronizing at statement
//! boundaries (the next node keyword or closing brace), so one pass reports
//! *every* syntax problem in the file, not just the first. Every
//! [`ParseError`] variant carries the byte span of the offending text; the
//! golden tests assert those spans exactly.

use crate::ast::{Attr, Node, NodeKind, ScenarioAst, Value};
use crate::span::{Diagnostic, Span, Spanned};

/// A syntax error with the byte span it occurred at.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A byte no token can start with.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Where it sits.
        span: Span,
    },
    /// A string literal with no closing quote before end of input.
    UnterminatedString {
        /// From the opening quote to end of input.
        span: Span,
    },
    /// Digits that do not form a number (e.g. `1.2.3`).
    InvalidNumber {
        /// The offending text.
        text: String,
        /// Where it sits.
        span: Span,
    },
    /// The parser needed one construct and found another.
    Expected {
        /// What was required (e.g. `"="`, "attribute value").
        what: &'static str,
        /// What was found instead, rendered for the message.
        found: String,
        /// Where the wrong token sits.
        span: Span,
    },
    /// A statement began with a word that is not a node kind.
    UnknownNodeKind {
        /// The word.
        word: String,
        /// Where it sits.
        span: Span,
    },
    /// The file does not start with `scenario "name" {`.
    MissingScenarioHeader {
        /// Start of input.
        span: Span,
    },
}

impl ParseError {
    /// The span the error is anchored at.
    pub fn span(&self) -> Span {
        match self {
            ParseError::UnexpectedChar { span, .. }
            | ParseError::UnterminatedString { span }
            | ParseError::InvalidNumber { span, .. }
            | ParseError::Expected { span, .. }
            | ParseError::UnknownNodeKind { span, .. }
            | ParseError::MissingScenarioHeader { span } => *span,
        }
    }

    /// Renders as a [`Diagnostic`].
    pub fn diagnostic(&self) -> Diagnostic {
        let message = match self {
            ParseError::UnexpectedChar { ch, .. } => {
                format!("unexpected character `{}`", ch.escape_default())
            }
            ParseError::UnterminatedString { .. } => "unterminated string literal".to_string(),
            ParseError::InvalidNumber { text, .. } => format!("invalid number `{text}`"),
            ParseError::Expected { what, found, .. } => format!("expected {what}, found {found}"),
            ParseError::UnknownNodeKind { word, .. } => format!(
                "unknown node kind `{word}` (expected one of `device`, `model`, `traffic`, `assert`)"
            ),
            ParseError::MissingScenarioHeader { .. } => {
                "a scenario file must start with `scenario \"name\" {`".to_string()
            }
        };
        Diagnostic::new(message, self.span())
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.diagnostic().message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Num(f64),
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Eq,
    Comma,
    Eof,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(w) => format!("`{w}`"),
            Token::Str(s) => format!("string \"{s}\""),
            Token::Num(n) => format!("number `{n}`"),
            Token::LBrace => "`{`".into(),
            Token::RBrace => "`}`".into(),
            Token::LBracket => "`[`".into(),
            Token::RBracket => "`]`".into(),
            Token::Eq => "`=`".into(),
            Token::Comma => "`,`".into(),
            Token::Eof => "end of input".into(),
        }
    }
}

/// Lexes the whole input. Bad bytes become errors and are skipped, so the
/// token stream (always ending in `Eof`) exists even for broken input.
fn lex(src: &str) -> (Vec<Spanned<Token>>, Vec<ParseError>) {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut errors = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' | b'}' | b'[' | b']' | b'=' | b',' => {
                let token = match b {
                    b'{' => Token::LBrace,
                    b'}' => Token::RBrace,
                    b'[' => Token::LBracket,
                    b']' => Token::RBracket,
                    b'=' => Token::Eq,
                    _ => Token::Comma,
                };
                tokens.push(Spanned::new(token, Span::new(i, i + 1)));
                i += 1;
            }
            b'"' => {
                let lo = i;
                i += 1;
                let mut text = String::new();
                let mut closed = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            closed = true;
                            break;
                        }
                        b'\\' if i + 1 < bytes.len() => {
                            text.push(bytes[i + 1] as char);
                            i += 2;
                        }
                        _ => {
                            // Strings are UTF-8 slices of the source; walk a
                            // full character at a time.
                            let ch = src[i..].chars().next().expect("in-bounds char");
                            text.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                if closed {
                    tokens.push(Spanned::new(Token::Str(text), Span::new(lo, i)));
                } else {
                    errors.push(ParseError::UnterminatedString {
                        span: Span::new(lo, i),
                    });
                }
            }
            b'0'..=b'9' | b'-' | b'+' => {
                let lo = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || matches!(bytes[i], b'.' | b'e' | b'E' | b'_')
                        || (matches!(bytes[i], b'+' | b'-') && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let text = &src[lo..i];
                let span = Span::new(lo, i);
                match text.replace('_', "").parse::<f64>() {
                    Ok(n) if n.is_finite() => tokens.push(Spanned::new(Token::Num(n), span)),
                    _ => errors.push(ParseError::InvalidNumber {
                        text: text.to_string(),
                        span,
                    }),
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let lo = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || matches!(bytes[i], b'_' | b'-'))
                {
                    i += 1;
                }
                tokens.push(Spanned::new(
                    Token::Ident(src[lo..i].to_string()),
                    Span::new(lo, i),
                ));
            }
            _ => {
                let ch = src[i..].chars().next().expect("in-bounds char");
                errors.push(ParseError::UnexpectedChar {
                    ch,
                    span: Span::new(i, i + ch.len_utf8()),
                });
                i += ch.len_utf8();
            }
        }
    }
    tokens.push(Spanned::new(Token::Eof, Span::point(src.len())));
    (tokens, errors)
}

struct Parser {
    tokens: Vec<Spanned<Token>>,
    pos: usize,
    errors: Vec<ParseError>,
}

impl Parser {
    fn peek(&self) -> &Spanned<Token> {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Spanned<Token> {
        let t = self.peek().clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Token, what: &'static str) -> Option<Span> {
        if &self.peek().value == want {
            Some(self.bump().span)
        } else {
            let found = self.peek().clone();
            self.errors.push(ParseError::Expected {
                what,
                found: found.value.describe(),
                span: found.span,
            });
            None
        }
    }

    /// Skips tokens until the next plausible statement boundary: a node
    /// keyword, a closing brace, or end of input.
    fn sync_to_statement(&mut self) {
        loop {
            match &self.peek().value {
                Token::Eof | Token::RBrace => return,
                Token::Ident(w) if NodeKind::from_keyword(w).is_some() => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_scenario(&mut self) -> Option<ScenarioAst> {
        let start = self.peek().span;
        match &self.peek().value {
            Token::Ident(w) if w == "scenario" => {
                self.bump();
            }
            _ => {
                self.errors
                    .push(ParseError::MissingScenarioHeader { span: start });
                return None;
            }
        }
        let name = match &self.peek().value {
            Token::Str(s) => {
                let s = s.clone();
                let t = self.bump();
                Spanned::new(s, t.span)
            }
            _ => {
                let found = self.peek().clone();
                self.errors.push(ParseError::Expected {
                    what: "a quoted scenario name",
                    found: found.value.describe(),
                    span: found.span,
                });
                Spanned::new(String::new(), found.span)
            }
        };
        self.eat(&Token::LBrace, "`{`");
        let mut nodes = Vec::new();
        loop {
            match &self.peek().value {
                Token::RBrace | Token::Eof => break,
                Token::Ident(w) => {
                    if let Some(kind) = NodeKind::from_keyword(w) {
                        let kw = self.bump();
                        if let Some(node) = self.parse_node(Spanned::new(kind, kw.span)) {
                            nodes.push(node);
                        }
                    } else {
                        let word = w.clone();
                        let t = self.bump();
                        self.errors
                            .push(ParseError::UnknownNodeKind { word, span: t.span });
                        self.sync_to_statement();
                    }
                }
                _ => {
                    let found = self.bump();
                    self.errors.push(ParseError::Expected {
                        what: "a node statement",
                        found: found.value.describe(),
                        span: found.span,
                    });
                    self.sync_to_statement();
                }
            }
        }
        let close = self
            .eat(&Token::RBrace, "`}` closing the scenario")
            .unwrap_or(self.peek().span);
        Some(ScenarioAst {
            name,
            nodes,
            span: start.to(close),
        })
    }

    fn parse_node(&mut self, kind: Spanned<NodeKind>) -> Option<Node> {
        let name = match &self.peek().value {
            Token::Ident(w) => {
                let w = w.clone();
                let t = self.bump();
                Spanned::new(w, t.span)
            }
            _ => {
                let found = self.peek().clone();
                self.errors.push(ParseError::Expected {
                    what: "a node name",
                    found: found.value.describe(),
                    span: found.span,
                });
                self.sync_to_statement();
                return None;
            }
        };
        if self.eat(&Token::LBrace, "`{`").is_none() {
            self.sync_to_statement();
            return None;
        }
        let mut attrs = Vec::new();
        loop {
            match &self.peek().value {
                Token::RBrace | Token::Eof => break,
                Token::Ident(_) => {
                    if let Some(attr) = self.parse_attr() {
                        attrs.push(attr);
                    } else {
                        self.sync_in_body();
                    }
                }
                _ => {
                    let found = self.bump();
                    self.errors.push(ParseError::Expected {
                        what: "an attribute or `}`",
                        found: found.value.describe(),
                        span: found.span,
                    });
                    self.sync_in_body();
                }
            }
        }
        let close = self
            .eat(&Token::RBrace, "`}` closing the node")
            .unwrap_or(self.peek().span);
        Some(Node {
            span: kind.span.to(close),
            kind,
            name,
            attrs,
        })
    }

    /// Recovery inside a node body: stop at the next attribute name, the
    /// closing brace, or end of input.
    fn sync_in_body(&mut self) {
        loop {
            match &self.peek().value {
                Token::Eof | Token::RBrace | Token::Ident(_) => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn parse_attr(&mut self) -> Option<Attr> {
        let name = match self.bump() {
            Spanned {
                value: Token::Ident(w),
                span,
            } => Spanned::new(w, span),
            _ => unreachable!("caller checked for an identifier"),
        };
        self.eat(&Token::Eq, "`=`")?;
        let value = self.parse_value()?;
        Some(Attr { name, value })
    }

    fn parse_value(&mut self) -> Option<Spanned<Value>> {
        let t = self.peek().clone();
        match t.value {
            Token::Str(s) => {
                self.bump();
                Some(Spanned::new(Value::Str(s), t.span))
            }
            Token::Num(n) => {
                self.bump();
                Some(Spanned::new(Value::Num(n), t.span))
            }
            Token::Ident(w) => {
                self.bump();
                let v = match w.as_str() {
                    "true" => Value::Bool(true),
                    "false" => Value::Bool(false),
                    _ => Value::Ident(w),
                };
                Some(Spanned::new(v, t.span))
            }
            Token::LBracket => {
                let open = self.bump().span;
                let mut items = Vec::new();
                loop {
                    match &self.peek().value {
                        Token::RBracket => break,
                        Token::Eof => break,
                        _ => {
                            items.push(self.parse_value()?);
                            if self.peek().value == Token::Comma {
                                self.bump();
                            } else if self.peek().value != Token::RBracket {
                                break;
                            }
                        }
                    }
                }
                let close = self.eat(&Token::RBracket, "`]` closing the list")?;
                Some(Spanned::new(Value::List(items), open.to(close)))
            }
            _ => {
                self.errors.push(ParseError::Expected {
                    what: "an attribute value",
                    found: t.value.describe(),
                    span: t.span,
                });
                None
            }
        }
    }
}

/// Parses one `.scn` source. On failure every accumulated syntax error is
/// returned, not just the first.
///
/// # Errors
///
/// Returns the accumulated [`ParseError`]s (never empty on `Err`).
pub fn parse(src: &str) -> Result<ScenarioAst, Vec<ParseError>> {
    let (tokens, lex_errors) = lex(src);
    let mut parser = Parser {
        tokens,
        pos: 0,
        errors: Vec::new(),
    };
    let ast = parser.parse_scenario();
    let mut errors = lex_errors;
    errors.extend(parser.errors);
    match (ast, errors.is_empty()) {
        (Some(ast), true) => Ok(ast),
        (_, _) => {
            if errors.is_empty() {
                // parse_scenario only returns None after pushing an error,
                // but keep the invariant explicit.
                errors.push(ParseError::MissingScenarioHeader {
                    span: Span::point(0),
                });
            }
            Err(errors)
        }
    }
}
