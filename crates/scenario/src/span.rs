//! Byte spans, spanned values, and diagnostic rendering.
//!
//! Every token the parser produces and every error either pass emits
//! carries a [`Span`] — a half-open byte range into the original source —
//! so diagnostics can point at the exact offending text, and so tests can
//! assert errors land on the right bytes rather than merely occurring.

/// A half-open byte range `[lo, hi)` into a scenario source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// First byte of the spanned text.
    pub lo: usize,
    /// One past the last byte.
    pub hi: usize,
}

impl Span {
    /// A span over `[lo, hi)`.
    pub fn new(lo: usize, hi: usize) -> Self {
        Self { lo, hi }
    }

    /// A zero-width span at `at` (end-of-input errors).
    pub fn point(at: usize) -> Self {
        Self { lo: at, hi: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

/// A value paired with the source span it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned<T> {
    /// The value.
    pub value: T,
    /// Where it was written.
    pub span: Span,
}

impl<T> Spanned<T> {
    /// Pairs `value` with `span`.
    pub fn new(value: T, span: Span) -> Self {
        Self { value, span }
    }
}

/// 1-based `(line, column)` of a byte offset (column counts bytes).
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let before = &src.as_bytes()[..offset];
    let line = before.iter().filter(|&&b| b == b'\n').count() + 1;
    let col = offset
        - before
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1)
        + 1;
    (line, col)
}

/// One rendered diagnostic: a message anchored at a span, plus optional
/// secondary notes (e.g. "first defined here").
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Primary message.
    pub message: String,
    /// Primary location.
    pub span: Span,
    /// Secondary notes, each optionally anchored at its own span.
    pub notes: Vec<(String, Option<Span>)>,
}

impl Diagnostic {
    /// A diagnostic with no notes.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        Self {
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Appends a secondary note.
    pub fn with_note(mut self, message: impl Into<String>, span: Option<Span>) -> Self {
        self.notes.push((message.into(), span));
        self
    }

    /// Renders the diagnostic as `path:line:col: message` with a source
    /// excerpt and caret underline, compiler-style.
    pub fn render(&self, path: &str, src: &str) -> String {
        let mut out = String::new();
        let (line, col) = line_col(src, self.span.lo);
        out.push_str(&format!("{path}:{line}:{col}: error: {}\n", self.message));
        out.push_str(&excerpt(src, self.span));
        for (note, span) in &self.notes {
            match span {
                Some(span) => {
                    let (line, col) = line_col(src, span.lo);
                    out.push_str(&format!("{path}:{line}:{col}: note: {note}\n"));
                    out.push_str(&excerpt(src, *span));
                }
                None => out.push_str(&format!("note: {note}\n")),
            }
        }
        out
    }
}

/// The source line containing `span.lo`, with a `^~~~` underline covering
/// the span's bytes on that line.
fn excerpt(src: &str, span: Span) -> String {
    let lo = span.lo.min(src.len());
    let line_start = src[..lo].rfind('\n').map_or(0, |p| p + 1);
    let line_end = src[lo..].find('\n').map_or(src.len(), |p| lo + p);
    let line_text = &src[line_start..line_end];
    let (line_no, _) = line_col(src, lo);
    let gutter = format!("{line_no:>5} | ");
    let mut underline = String::new();
    for _ in 0..(lo - line_start) {
        underline.push(' ');
    }
    underline.push('^');
    let span_on_line = span.hi.min(line_end).saturating_sub(lo);
    for _ in 1..span_on_line.max(1) {
        underline.push('~');
    }
    format!(
        "{gutter}{line_text}\n{:>width$} | {underline}\n",
        "",
        width = gutter.len() - 3
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_is_one_based() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
        assert_eq!(line_col(src, 100), (3, 3));
    }

    #[test]
    fn spans_merge() {
        assert_eq!(Span::new(3, 5).to(Span::new(10, 12)), Span::new(3, 12));
        assert_eq!(Span::new(10, 12).to(Span::new(3, 5)), Span::new(3, 12));
    }

    #[test]
    fn render_points_at_the_span() {
        let src = "device nx {\n  platfrom = \"nx\"\n}\n";
        let at = src.find("platfrom").unwrap();
        let d = Diagnostic::new("unknown attribute `platfrom`", Span::new(at, at + 8));
        let rendered = d.render("t.scn", src);
        assert!(rendered.contains("t.scn:2:3: error: unknown attribute"));
        assert!(rendered.contains("^~~~~~~~"), "{rendered}");
    }
}
