//! The one generic driver every scenario runs through.
//!
//! This is the piece the repro bins used to hand-roll twenty times over:
//! given an [`ExecutionPlan`], source the engines (shared
//! [`EngineFarm`] zoo for `source = zoo`, seeded fresh builds for
//! `source = fresh`), execute each unit's traffic — closed-loop latency via
//! [`ExecutionContext::measure_latency`], closed-loop or Poisson open-loop
//! serving via [`InferenceServer`] — and fold the outcomes into named
//! metrics the assertion nodes are checked against. Driver activity is
//! visible in the telemetry [`Registry`] like
//! every other subsystem (`trtsim_scenario_units_total`,
//! `trtsim_scenario_asserts_total`).
//!
//! Parity with the legacy harnesses is load-bearing, not cosmetic: the
//! integration tests pin this driver's numbers equal to
//! `trtsim_repro::exp_fps`, `trtsim_repro::exp_serving`, and the
//! `adas_pipeline` example, so every code path here mirrors those exactly
//! (same engine provenance, same `TimingOptions`, same seeds).

use std::sync::Arc;

use trtsim_core::fleet::{FleetBuilder, FleetConfig};
use trtsim_core::runtime::{ExecutionContext, TimingOptions};
use trtsim_core::serving::{InferenceServer, ServerConfig, ServingError};
use trtsim_core::{Builder, BuilderConfig, Engine, RequestTrace};

/// What a serving/fleet unit returns: its metric rows plus the flight
/// recorder's retained request traces.
type ServingUnitResult = (Vec<(String, f64)>, Vec<RequestTrace>);
use trtsim_data::traffic::ArrivalTrace;
use trtsim_gpu::contention;
use trtsim_gpu::device::Platform;
use trtsim_metrics::{fps_from_latency_us, Counter, LatencyPercentiles, Registry};
use trtsim_models::ModelId;
use trtsim_repro::exp_fps::unoptimized_latency_us;
use trtsim_repro::support::{EngineFarm, FarmKey};
use trtsim_util::derive_seed;
use trtsim_util::stats::Summary;

use crate::compile::{ExecutionPlan, PlanUnit};
use crate::validate::{EngineSource, FleetTrace, PowerMode, TrafficKind};

fn scenario_counter(metric: &str, label: &str) -> Counter {
    Registry::global().counter(
        &format!("trtsim_scenario_{metric}_total"),
        "Scenario-driver activity by kind/outcome",
        &[("kind", label)],
    )
}

/// A driver failure (engine builds panic inside the farm instead — a
/// validated network failing to build is a bug, not an input error).
#[derive(Debug, Clone, PartialEq)]
pub enum DriverError {
    /// The inference server rejected its configuration or a submission.
    Serving(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Serving(msg) => write!(f, "serving error: {msg}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<ServingError> for DriverError {
    fn from(e: ServingError) -> Self {
        DriverError::Serving(format!("{e:?}"))
    }
}

/// The timed runs of one engine build (latency traffic only).
#[derive(Debug, Clone, PartialEq)]
pub struct BuildRuns {
    /// Build index.
    pub build: u32,
    /// Per-run latencies, µs.
    pub samples: Vec<f64>,
}

/// One executed unit's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitResult {
    /// Display label (see [`PlanUnit::label`]).
    pub label: String,
    /// Traffic node name.
    pub traffic: String,
    /// Model node name.
    pub model: String,
    /// Network under test.
    pub network: ModelId,
    /// Platform executed on.
    pub platform: Platform,
    /// Device node name.
    pub device: String,
    /// Batch size.
    pub batch: u32,
    /// `latency` / `closed` / `poisson` / `fleet` / `concurrency`.
    pub kind: &'static str,
    /// Host wall-clock time spent executing the unit, ms.
    pub wall_ms: f64,
    /// Named metrics (keys from [`crate::validate::METRICS`]).
    pub metrics: Vec<(String, f64)>,
    /// Raw per-build samples (latency traffic; empty for serving).
    pub builds: Vec<BuildRuns>,
    /// Request traces the serving/fleet flight recorder retained (empty for
    /// latency and concurrency units). Dumped by `scenario run --trace-out`.
    pub traces: Vec<RequestTrace>,
}

impl UnitResult {
    /// Looks up a metric by key.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// One assertion check against one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertOutcome {
    /// Assert node name.
    pub name: String,
    /// Unit label the bound was checked against.
    pub unit: String,
    /// Metric key.
    pub metric: String,
    /// Observed value; `None` when the unit never produced the metric.
    pub value: Option<f64>,
    /// Inclusive lower bound, if any.
    pub min: Option<f64>,
    /// Inclusive upper bound, if any.
    pub max: Option<f64>,
    /// Whether the bound held.
    pub passed: bool,
}

impl AssertOutcome {
    /// Renders `name: metric=value in [min, max] — ok|FAIL`.
    pub fn render(&self) -> String {
        let bound = match (self.min, self.max) {
            (Some(lo), Some(hi)) => format!("[{lo}, {hi}]"),
            (Some(lo), None) => format!(">= {lo}"),
            (None, Some(hi)) => format!("<= {hi}"),
            (None, None) => "(no bound)".into(),
        };
        let value = match self.value {
            Some(v) => format!("{v:.3}"),
            None => "missing".into(),
        };
        format!(
            "{}: {} = {} {} on {} — {}",
            self.name,
            self.metric,
            value,
            bound,
            self.unit,
            if self.passed { "ok" } else { "FAIL" }
        )
    }
}

/// Everything one scenario run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Unit outcomes, in plan order.
    pub units: Vec<UnitResult>,
    /// Assertion outcomes, in plan order.
    pub asserts: Vec<AssertOutcome>,
}

impl ScenarioReport {
    /// Whether every assertion held.
    pub fn passed(&self) -> bool {
        self.asserts.iter().all(|a| a.passed)
    }
}

/// Sources the engine for `(unit, build)` — the farm zoo for `zoo`, a
/// memoized seeded build on the unit's execution device for `fresh`.
fn engine_for(unit: &PlanUnit, build: u32) -> Arc<Engine> {
    let farm = EngineFarm::global();
    match unit.source {
        EngineSource::Zoo => farm.zoo(unit.network, unit.device.platform, u64::from(build)),
        EngineSource::Fresh { seed } => {
            let power_salt = match unit.device.power {
                PowerMode::Max => 0,
                PowerMode::Pinned => 1,
            };
            let key = FarmKey {
                domain: "scenario",
                model: unit.network,
                platform: unit.device.platform,
                index: u64::from(build),
                // Different base seeds / power modes must not collide in the
                // farm's memo table.
                variant: derive_seed(seed, "scenario", power_salt),
            };
            farm.get_or_build(key, |cache| {
                Builder::new(
                    unit.device_spec(),
                    BuilderConfig::default()
                        .with_build_seed(seed + u64::from(build))
                        .with_timing_cache(cache.clone()),
                )
                .build(&unit.network.descriptor())
            })
        }
    }
}

/// Timing options shared by every unit: engine resident, upload excluded —
/// the paper's FPS convention ("excluding the time to load the image").
fn unit_timing(unit: &PlanUnit, jitter_sd: f64) -> TimingOptions {
    TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(unit.host_glue_us)
        .with_run_jitter_sd(jitter_sd)
}

fn run_latency_unit(
    unit: &PlanUnit,
    runs: u32,
    jitter_sd: f64,
    compare_unoptimized: bool,
) -> (Vec<(String, f64)>, Vec<BuildRuns>) {
    let opts = unit_timing(unit, jitter_sd);
    let mut builds = Vec::new();
    let mut all = Vec::new();
    for build in 0..unit.builds {
        let engine = engine_for(unit, build);
        let ctx = ExecutionContext::new(&engine, unit.device_spec());
        // Seeding by build index matches the legacy harnesses: exp_fps uses
        // seed 0 for its single build, adas_pipeline seeds run `b` with `b`.
        let samples = ctx.measure_latency(&opts, runs as usize, u64::from(build));
        all.extend_from_slice(&samples);
        builds.push(BuildRuns { build, samples });
    }
    let tail = LatencyPercentiles::from_runs_us(&all);
    let summary = Summary::from_samples(&all);
    let fps = fps_from_latency_us(tail.mean_us);
    let mut metrics = vec![
        ("fps".to_string(), fps),
        ("mean_us".to_string(), tail.mean_us),
        ("p50_us".to_string(), tail.p50_us),
        ("p90_us".to_string(), tail.p90_us),
        ("p95_us".to_string(), summary.p95),
        ("p99_us".to_string(), tail.p99_us),
        ("max_us".to_string(), tail.max_us),
    ];
    if compare_unoptimized {
        let unopt_fps =
            fps_from_latency_us(unoptimized_latency_us(unit.network, &unit.device_spec()));
        metrics.push(("unoptimized_fps".to_string(), unopt_fps));
        metrics.push(("gain".to_string(), fps / unopt_fps));
    }
    (metrics, builds)
}

#[allow(clippy::too_many_arguments)]
fn run_serving_unit(
    unit: &PlanUnit,
    frames: u32,
    workers: u32,
    queue: u32,
    timeout_us: f64,
    arrival: Option<(f64, u64)>,
    deadline_us: Option<f64>,
) -> Result<ServingUnitResult, DriverError> {
    let engine = engine_for(unit, 0);
    let device = unit.device_spec();
    // Serving is deterministic (jitter 0), matching exp_serving.
    let mut config = ServerConfig::default()
        .with_workers(workers as usize)
        .with_queue_capacity(queue as usize)
        .with_max_batch_size(unit.batch as usize)
        .with_batch_timeout_us(timeout_us)
        .with_timing(unit_timing(unit, 0.0));
    if let Some((period_us, seed)) = arrival {
        config = config
            .with_arrival_period_us(period_us)
            .with_poisson_arrivals(seed);
    }
    // A deadline turns on predictive serving: SLO-aware batch sizing and
    // per-request miss accounting.
    if let Some(d) = deadline_us {
        config = config.with_deadline_us(d).with_predictive(true);
    }
    let server = InferenceServer::start(&engine, &device, config)?;
    let recorder = server.flight_recorder();
    let mut rejected = 0u64;
    for frame in 0..u64::from(frames) {
        match server.submit(frame) {
            Ok(()) => {}
            Err(ServingError::QueueFull) => rejected += 1,
            Err(e) => return Err(e.into()),
        }
    }
    let stats = server.drain();
    let metrics = vec![
        ("fps".to_string(), stats.aggregate_fps),
        ("mean_us".to_string(), stats.latency.mean_us),
        ("p50_us".to_string(), stats.latency.p50_us),
        ("p90_us".to_string(), stats.latency.p90_us),
        ("p99_us".to_string(), stats.latency.p99_us),
        ("max_us".to_string(), stats.latency.max_us),
        ("gr3d_percent".to_string(), stats.gr3d_percent),
        ("batches".to_string(), stats.batches as f64),
        ("completed".to_string(), stats.completed as f64),
        ("rejected".to_string(), (stats.rejected + rejected) as f64),
        ("deadline_missed".to_string(), stats.deadline_missed as f64),
        (
            "deadline_miss_rate".to_string(),
            stats.deadline_missed as f64 / (stats.completed.max(1)) as f64,
        ),
    ];
    Ok((metrics, recorder.traces()))
}

/// Lowers a fleet unit's arrival-trace declaration into timestamps.
fn fleet_arrivals(trace: &FleetTrace, frames: u32, seed: u64) -> ArrivalTrace {
    let frames = frames as usize;
    match trace {
        FleetTrace::Poisson { period_us } => ArrivalTrace::poisson(*period_us, frames, seed),
        FleetTrace::Diurnal {
            period_us,
            peak_period_us,
            cycle_us,
        } => ArrivalTrace::diurnal(*period_us, *peak_period_us, *cycle_us, frames, seed),
        FleetTrace::Burst {
            period_us,
            peak_period_us,
            cycle_us,
            burst_fraction,
        } => ArrivalTrace::burst(
            *period_us,
            *peak_period_us,
            *cycle_us,
            *burst_fraction,
            frames,
            seed,
        ),
    }
}

/// One fleet unit: every device the unit spans becomes a board, one replica
/// of the unit's engine per board, and the trace is replayed through the
/// router ([`trtsim_core::fleet::Fleet`]).
#[allow(clippy::too_many_arguments)]
fn run_fleet_unit(
    unit: &PlanUnit,
    trace: &FleetTrace,
    frames: u32,
    workers: u32,
    queue: u32,
    seed: u64,
    tenant: Option<&str>,
    deadline_us: Option<f64>,
) -> Result<ServingUnitResult, DriverError> {
    let engine = engine_for(unit, 0);
    let mut config = ServerConfig::default()
        .with_workers(workers as usize)
        .with_queue_capacity(queue as usize)
        .with_max_batch_size(unit.batch as usize)
        .with_batch_timeout_us(0.0)
        .with_timing(unit_timing(unit, 0.0));
    if let Some(d) = deadline_us {
        config = config.with_deadline_us(d).with_predictive(true);
    }
    let devices = unit.device_specs();
    let mut builder = FleetBuilder::new();
    for (decl, spec) in &devices {
        builder = builder.device(&decl.name, spec.clone());
    }
    for (decl, _) in &devices {
        builder = builder.replica_for_tenant(&decl.name, &engine, config, tenant)?;
    }
    // A deadline also turns on predictive routing: the fleet shares one
    // learned model across replicas and scores by predicted finish time.
    let fleet_config = FleetConfig::default().with_predictive(deadline_us.is_some());
    let fleet = builder.start(fleet_config)?;
    let recorder = fleet.flight_recorder();
    let arrivals = fleet_arrivals(trace, frames, seed);
    let tenant = tenant.unwrap_or("default");
    for (i, &t) in arrivals.arrivals_us.iter().enumerate() {
        match fleet.submit_as(tenant, engine.name(), i as u64, t) {
            Ok(()) | Err(ServingError::QueueFull) | Err(ServingError::DeadlineUnmeetable) => {}
            Err(e) => return Err(e.into()),
        }
    }
    let stats = fleet.drain();
    let shares: Vec<f64> = devices
        .iter()
        .map(|(decl, _)| stats.completed_share(&decl.name))
        .collect();
    let total_completed: u64 = stats.completed;
    let gr3d = if total_completed == 0 {
        0.0
    } else {
        stats
            .replicas
            .iter()
            .map(|r| r.stats.gr3d_percent * r.stats.completed as f64)
            .sum::<f64>()
            / total_completed as f64
    };
    let metrics = vec![
        ("fps".to_string(), stats.aggregate_fps),
        ("mean_us".to_string(), stats.latency.mean_us),
        ("p50_us".to_string(), stats.latency.p50_us),
        ("p90_us".to_string(), stats.latency.p90_us),
        ("p99_us".to_string(), stats.latency.p99_us),
        ("max_us".to_string(), stats.latency.max_us),
        ("gr3d_percent".to_string(), gr3d),
        (
            "batches".to_string(),
            stats.replicas.iter().map(|r| r.stats.batches).sum::<u64>() as f64,
        ),
        ("completed".to_string(), stats.completed as f64),
        ("accepted".to_string(), stats.accepted as f64),
        ("rejected".to_string(), stats.rejected as f64),
        ("dropped".to_string(), stats.dropped as f64),
        ("devices".to_string(), devices.len() as f64),
        (
            "min_device_share".to_string(),
            shares.iter().copied().fold(f64::INFINITY, f64::min),
        ),
        (
            "max_device_share".to_string(),
            shares.iter().copied().fold(0.0, f64::max),
        ),
        ("deadline_missed".to_string(), stats.deadline_missed as f64),
        (
            "deadline_miss_rate".to_string(),
            stats.deadline_missed as f64 / (stats.completed.max(1)) as f64,
        ),
    ];
    Ok((metrics, recorder.traces()))
}

/// One concurrency unit: the closed-form saturation sweep, mirroring
/// `trtsim_repro::exp_concurrency::run` exactly (same engine provenance,
/// same profile inputs) so the parity tests can pin equality.
fn run_concurrency_unit(unit: &PlanUnit) -> Vec<(String, f64)> {
    let engine = engine_for(unit, 0);
    let device = unit.device_spec();
    let ctx = ExecutionContext::new(&engine, device.clone());
    let profile = ctx.profile(unit.host_glue_us);
    let (points, _) = contention::sweep(&profile, &device);
    let last = points.last().expect("sweep yields at least one point");
    vec![
        ("max_threads".to_string(), f64::from(last.threads)),
        ("fps".to_string(), last.fps),
        ("gr3d_percent".to_string(), last.utilization * 100.0),
    ]
}

/// Executes every unit of the plan, then checks every assertion.
///
/// # Errors
///
/// Returns the first [`DriverError`] — an invalid serving configuration
/// that survived validation (a driver bug, surfaced rather than hidden).
pub fn run(plan: &ExecutionPlan) -> Result<ScenarioReport, DriverError> {
    let mut units = Vec::with_capacity(plan.units.len());
    for unit in &plan.units {
        let started = std::time::Instant::now();
        let (kind, metrics, builds, traces) = match &unit.kind {
            TrafficKind::Latency {
                runs,
                jitter_sd,
                compare_unoptimized,
            } => {
                let (metrics, builds) =
                    run_latency_unit(unit, *runs, *jitter_sd, *compare_unoptimized);
                ("latency", metrics, builds, Vec::new())
            }
            TrafficKind::Closed {
                frames,
                workers,
                queue,
                timeout_us,
            } => {
                let (metrics, traces) =
                    run_serving_unit(unit, *frames, *workers, *queue, *timeout_us, None, None)?;
                ("closed", metrics, Vec::new(), traces)
            }
            TrafficKind::Poisson {
                frames,
                workers,
                queue,
                period_us,
                seed,
                deadline_us,
            } => {
                let (metrics, traces) = run_serving_unit(
                    unit,
                    *frames,
                    *workers,
                    *queue,
                    f64::INFINITY,
                    Some((*period_us, *seed)),
                    *deadline_us,
                )?;
                ("poisson", metrics, Vec::new(), traces)
            }
            TrafficKind::Fleet {
                trace,
                frames,
                workers,
                queue,
                seed,
                tenant,
                deadline_us,
            } => {
                let (metrics, traces) = run_fleet_unit(
                    unit,
                    trace,
                    *frames,
                    *workers,
                    *queue,
                    *seed,
                    tenant.as_deref(),
                    *deadline_us,
                )?;
                ("fleet", metrics, Vec::new(), traces)
            }
            TrafficKind::Concurrency => (
                "concurrency",
                run_concurrency_unit(unit),
                Vec::new(),
                Vec::new(),
            ),
        };
        scenario_counter("units", kind).inc();
        units.push(UnitResult {
            label: unit.label(),
            traffic: unit.traffic.clone(),
            model: unit.model.clone(),
            network: unit.network,
            platform: unit.device.platform,
            device: unit.device.name.clone(),
            batch: unit.batch,
            kind,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            metrics,
            builds,
            traces,
        });
    }
    let mut asserts = Vec::new();
    for a in &plan.asserts {
        for &u in &a.units {
            let unit = &units[u];
            let value = unit.metric(&a.metric);
            let passed = match value {
                None => false,
                Some(v) => {
                    v.is_finite()
                        && a.min.is_none_or(|lo| v >= lo)
                        && a.max.is_none_or(|hi| v <= hi)
                }
            };
            scenario_counter("asserts", if passed { "pass" } else { "fail" }).inc();
            asserts.push(AssertOutcome {
                name: a.name.clone(),
                unit: unit.label.clone(),
                metric: a.metric.clone(),
                value,
                min: a.min,
                max: a.max,
                passed,
            });
        }
    }
    Ok(ScenarioReport {
        name: plan.name.clone(),
        units,
        asserts,
    })
}
