//! Lowering: validated [`ScenarioGraph`] → flat [`ExecutionPlan`].
//!
//! The compiler expands the graph's cross products — every traffic node ×
//! every model node it uses × every network × every device × every batch
//! size — into a flat list of [`PlanUnit`]s the driver executes one by one.
//! All name resolution already happened in [`mod@crate::validate`]; lowering is
//! pure bookkeeping plus two resolutions that need model metadata: the
//! host-glue microseconds (`HostGlue::Model` → the network's calibrated
//! value) and the execution device (power mode → [`DeviceSpec`]).
//!
//! `--smoke` is applied here, not in the driver: [`CompileOptions::smoke`]
//! caps frames / builds / runs so CI exercises the full pipeline in
//! seconds, and the caps are visible in the plan rather than silently
//! applied mid-run.

use crate::validate::{DeviceDecl, EngineSource, HostGlue, PowerMode, ScenarioGraph, TrafficKind};
use trtsim_gpu::device::DeviceSpec;
use trtsim_models::ModelId;

/// Knobs for lowering.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Cap the plan to CI size: ≤ 32 frames, ≤ 2 builds, ≤ 5 timed runs.
    pub smoke: bool,
}

/// One fully resolved experiment unit.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanUnit {
    /// Name of the traffic node this unit came from.
    pub traffic: String,
    /// Name of the model node.
    pub model: String,
    /// The network under test.
    pub network: ModelId,
    /// The device declaration (platform, power, name). Fleet units span
    /// several devices ([`PlanUnit::fleet_devices`]); this is the first.
    pub device: DeviceDecl,
    /// Every device of a fleet unit, in graph order. Empty for non-fleet
    /// kinds, which run on [`PlanUnit::device`] alone.
    pub fleet_devices: Vec<DeviceDecl>,
    /// Engine max batch size / dynamic-batcher cap.
    pub batch: u32,
    /// Engine provenance.
    pub source: EngineSource,
    /// Engine builds (latency traffic measures each; serving uses build 0).
    pub builds: u32,
    /// Resolved host glue, µs.
    pub host_glue_us: f64,
    /// What to run, with smoke caps already applied.
    pub kind: TrafficKind,
}

impl PlanUnit {
    /// Stable display label: `traffic/model/network@device b<batch>`
    /// (`@fleet<n>` for a unit spanning `n` devices).
    pub fn label(&self) -> String {
        let device = if self.fleet_devices.len() > 1 {
            format!("fleet{}", self.fleet_devices.len())
        } else {
            self.device.name.clone()
        };
        format!(
            "{}/{}/{}@{} b{}",
            self.traffic,
            self.model,
            self.network.info().name,
            device,
            self.batch
        )
    }

    /// The [`DeviceSpec`] the unit executes on.
    pub fn device_spec(&self) -> DeviceSpec {
        spec_of(&self.device)
    }

    /// Every device the unit spans, with resolved specs: the fleet set for
    /// fleet units, the single execution device otherwise.
    pub fn device_specs(&self) -> Vec<(&DeviceDecl, DeviceSpec)> {
        if self.fleet_devices.is_empty() {
            vec![(&self.device, self.device_spec())]
        } else {
            self.fleet_devices.iter().map(|d| (d, spec_of(d))).collect()
        }
    }
}

/// Resolves a device declaration's power mode to a [`DeviceSpec`].
fn spec_of(device: &DeviceDecl) -> DeviceSpec {
    match device.power {
        PowerMode::Max => DeviceSpec::max_clock(device.platform),
        PowerMode::Pinned => DeviceSpec::pinned_clock(device.platform),
    }
}

/// A lowered assertion: a metric bound applied to a set of plan units.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAssert {
    /// The assert node's name.
    pub name: String,
    /// Metric key to bound.
    pub metric: String,
    /// Inclusive lower bound.
    pub min: Option<f64>,
    /// Inclusive upper bound.
    pub max: Option<f64>,
    /// Indices into [`ExecutionPlan::units`] the bound applies to.
    pub units: Vec<usize>,
}

/// The flat plan the generic driver executes.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionPlan {
    /// Scenario name.
    pub name: String,
    /// Experiment units in deterministic graph order.
    pub units: Vec<PlanUnit>,
    /// Lowered assertions.
    pub asserts: Vec<PlanAssert>,
}

fn cap_kind(kind: &TrafficKind, smoke: bool) -> TrafficKind {
    let mut kind = kind.clone();
    if !smoke {
        return kind;
    }
    match &mut kind {
        TrafficKind::Latency { runs, .. } => *runs = (*runs).min(5),
        TrafficKind::Closed { frames, queue, .. } => {
            *frames = (*frames).min(32);
            *queue = (*queue).min(32);
        }
        TrafficKind::Poisson { frames, queue, .. } => {
            *frames = (*frames).min(32);
            *queue = (*queue).min(32);
        }
        TrafficKind::Fleet { frames, queue, .. } => {
            *frames = (*frames).min(32);
            *queue = (*queue).min(32);
        }
        // Closed-form sweep: already CI-fast, nothing to cap.
        TrafficKind::Concurrency => {}
    }
    kind
}

/// Lowers a validated graph into an execution plan.
pub fn compile(graph: &ScenarioGraph, opts: CompileOptions) -> ExecutionPlan {
    let mut units = Vec::new();
    // traffic index → plan-unit indices, for assertion lowering.
    let mut units_of_traffic: Vec<Vec<usize>> = vec![Vec::new(); graph.traffic.len()];
    for (t, traffic) in graph.traffic.iter().enumerate() {
        let kind = cap_kind(&traffic.kind, opts.smoke);
        for &m in &traffic.models {
            let model = &graph.models[m];
            let builds = if opts.smoke {
                model.builds.min(2)
            } else {
                model.builds
            };
            for &network in &model.networks {
                // A fleet unit spans every device the model uses — one
                // router over the whole set, not a per-device cross
                // product.
                let device_sets: Vec<(DeviceDecl, Vec<DeviceDecl>)> =
                    if matches!(kind, TrafficKind::Fleet { .. }) {
                        let fleet: Vec<DeviceDecl> = model
                            .devices
                            .iter()
                            .map(|&d| graph.devices[d].clone())
                            .collect();
                        match fleet.first() {
                            Some(first) => vec![(first.clone(), fleet)],
                            None => Vec::new(),
                        }
                    } else {
                        model
                            .devices
                            .iter()
                            .map(|&d| (graph.devices[d].clone(), Vec::new()))
                            .collect()
                    };
                for (device, fleet_devices) in device_sets {
                    for &batch in &model.batches {
                        units_of_traffic[t].push(units.len());
                        units.push(PlanUnit {
                            traffic: traffic.name.clone(),
                            model: model.name.clone(),
                            network,
                            device: device.clone(),
                            fleet_devices: fleet_devices.clone(),
                            batch,
                            source: model.source,
                            builds,
                            host_glue_us: match model.host_glue {
                                HostGlue::Model => network.info().host_glue_us,
                                HostGlue::Fixed(us) => us,
                            },
                            kind: kind.clone(),
                        });
                    }
                }
            }
        }
    }
    let asserts = graph
        .asserts
        .iter()
        .map(|a| PlanAssert {
            name: a.name.clone(),
            metric: a.metric.clone(),
            min: a.min,
            max: a.max,
            units: a
                .traffic
                .iter()
                .flat_map(|&t| units_of_traffic[t].iter().copied())
                .collect(),
        })
        .collect();
    ExecutionPlan {
        name: graph.name.clone(),
        units,
        asserts,
    }
}
