//! End-to-end benchmarks of the paper's experiment harnesses — one bench per
//! reproduced table/figure family, so regressions in any harness are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use trtsim_gpu::device::Platform;
use trtsim_models::ModelId;
use trtsim_repro::exp_accuracy::AccuracyConfig;
use trtsim_repro::*;

fn tight<'c>(
    c: &'c mut Criterion,
    name: &'static str,
) -> criterion::BenchmarkGroup<'c, criterion::measurement::WallTime> {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group
}

fn bench_size_table(c: &mut Criterion) {
    let mut group = tight(c, "experiments");
    group.bench_function("table2_model_sizes", |b| b.iter(exp_sizes::run));
    group.finish();
}

fn bench_accuracy(c: &mut Criterion) {
    let config = AccuracyConfig::quick();
    let mut group = tight(c, "experiments-accuracy");
    group.bench_function("table3_benign_accuracy_quick", |b| {
        b.iter(|| exp_accuracy::run_table3(black_box(&config)))
    });
    group.finish();
}

fn bench_latency_and_concurrency(c: &mut Criterion) {
    let mut group = tight(c, "experiments-latency");
    group.bench_function("table9_latency_two_models", |b| {
        b.iter(exp_latency::run_table9)
    });
    group.bench_function("fig3_tinyyolo_nx", |b| {
        b.iter(|| exp_concurrency::run(ModelId::TinyYolov3, Platform::Nx))
    });
    group.bench_function("table17_bsp_inception", |b| {
        b.iter(|| exp_bsp::run(ModelId::InceptionV4, 3))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_size_table,
    bench_accuracy,
    bench_latency_and_concurrency
);
criterion_main!(benches);
