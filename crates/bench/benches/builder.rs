//! Benchmarks of the engine-build pipeline (Figure 2) and its passes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use trtsim_core::passes;
use trtsim_core::{Builder, BuilderConfig};
use trtsim_gpu::device::DeviceSpec;
use trtsim_models::ModelId;

fn bench_full_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("builder/full");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    for model in [ModelId::TinyYolov3, ModelId::Resnet18, ModelId::Googlenet] {
        let network = model.descriptor();
        group.bench_function(model.info().name, |b| {
            b.iter(|| {
                Builder::new(
                    DeviceSpec::xavier_nx(),
                    BuilderConfig::default().with_build_seed(1),
                )
                .build(black_box(&network))
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_passes(c: &mut Criterion) {
    let network = ModelId::InceptionV4.descriptor();
    let mut group = c.benchmark_group("builder/passes");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("dead_layer", |b| {
        b.iter(|| passes::dead_layer::run(black_box(&network)).unwrap())
    });
    let (clean, _) = passes::dead_layer::run(&network).unwrap();
    group.bench_function("vertical_fusion", |b| {
        b.iter(|| passes::vertical_fusion::run(black_box(&clean)).unwrap())
    });
    let (fused, _) = passes::vertical_fusion::run(&clean).unwrap();
    group.bench_function("horizontal_merge", |b| {
        b.iter(|| passes::horizontal_merge::run(black_box(&fused)).unwrap())
    });
    group.finish();
}

fn bench_plan_roundtrip(c: &mut Criterion) {
    let engine = trtsim_bench::engine_fixture(ModelId::TinyYolov3);
    let blob = trtsim_core::plan::serialize(&engine);
    let mut group = c.benchmark_group("builder/plan");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("serialize", |b| {
        b.iter(|| trtsim_core::plan::serialize(black_box(&engine)))
    });
    group.bench_function("deserialize", |b| {
        b.iter(|| trtsim_core::plan::deserialize(black_box(&blob)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_builds,
    bench_passes,
    bench_plan_roundtrip
);
criterion_main!(benches);
