//! Benchmarks of engine execution: numeric inference and simulated timing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use trtsim_core::runtime::{ExecutionContext, TimingOptions};
use trtsim_core::{Builder, BuilderConfig};
use trtsim_data::SyntheticImageNet;
use trtsim_gpu::device::DeviceSpec;
use trtsim_ir::ReferenceExecutor;
use trtsim_models::numeric::{build_classifier, NUMERIC_INPUT};
use trtsim_models::ModelId;

fn bench_numeric_inference(c: &mut Criterion) {
    let dataset = SyntheticImageNet::new(8, NUMERIC_INPUT, 5);
    let prototypes: Vec<_> = (0..8).map(|i| dataset.prototype(i)).collect();
    let network = build_classifier(ModelId::Resnet18, &prototypes, 0.3, 1);
    let image = dataset.sample(0, 0).image;
    let device = DeviceSpec::xavier_nx();
    let engine = Builder::new(device.clone(), BuilderConfig::default().with_build_seed(1))
        .build(&network)
        .unwrap();
    let ctx = ExecutionContext::new(&engine, device);
    let reference = ReferenceExecutor::new(&network).unwrap();

    let mut group = c.benchmark_group("inference/numeric");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("reference_fp32", |b| {
        b.iter(|| reference.run(black_box(&image)).unwrap())
    });
    group.bench_function("engine_fp16", |b| {
        b.iter(|| ctx.infer(black_box(&image)).unwrap())
    });
    group.finish();
}

fn bench_timed_inference(c: &mut Criterion) {
    let engine = trtsim_bench::engine_fixture(ModelId::Googlenet);
    let ctx = ExecutionContext::new(&engine, DeviceSpec::xavier_nx());
    let opts = TimingOptions::default();
    let mut group = c.benchmark_group("inference/simulated_timing");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("measure_latency_10_runs", |b| {
        b.iter(|| ctx.measure_latency(black_box(&opts), 10, 0))
    });
    group.bench_function("engine_profile", |b| {
        b.iter(|| ctx.profile(black_box(2000.0)))
    });
    group.finish();
}

criterion_group!(benches, bench_numeric_inference, bench_timed_inference);
criterion_main!(benches);
