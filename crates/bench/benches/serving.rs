//! Benchmarks of the serving subsystem: submission-path overhead and
//! end-to-end serve runs at different batch sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;
use trtsim_core::runtime::TimingOptions;
use trtsim_core::serving::{InferenceServer, ServerConfig};
use trtsim_gpu::device::DeviceSpec;
use trtsim_models::ModelId;

fn timing() -> TimingOptions {
    TimingOptions::default()
        .without_engine_upload()
        .with_host_glue_us(ModelId::TinyYolov3.info().host_glue_us)
        .with_run_jitter_sd(0.0)
}

fn bench_serve_run(c: &mut Criterion) {
    let engine = trtsim_bench::engine_fixture(ModelId::TinyYolov3);
    let device = DeviceSpec::xavier_nx();
    let mut group = c.benchmark_group("serving/serve_128_frames");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    for batch in [1usize, 8] {
        group.bench_function(format!("batch_{batch}"), |b| {
            b.iter(|| {
                let server = InferenceServer::start(
                    &engine,
                    &device,
                    ServerConfig::default()
                        .with_workers(4)
                        .with_queue_capacity(128)
                        .with_max_batch_size(batch)
                        .with_batch_timeout_us(f64::INFINITY)
                        .with_timing(timing()),
                )
                .unwrap();
                for frame in 0..128u64 {
                    server.submit(black_box(frame)).unwrap();
                }
                black_box(server.drain())
            })
        });
    }
    group.finish();
}

fn bench_submission_path(c: &mut Criterion) {
    let engine = trtsim_bench::engine_fixture(ModelId::TinyYolov3);
    let device = DeviceSpec::xavier_nx();
    let mut group = c.benchmark_group("serving/submission");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("try_submit_under_overload", |b| {
        let server = InferenceServer::start(
            &engine,
            &device,
            ServerConfig::default()
                .with_workers(1)
                .with_queue_capacity(4)
                .with_max_batch_size(4)
                .with_batch_timeout_us(f64::INFINITY)
                .with_timing(timing()),
        )
        .unwrap();
        let mut frame = 0u64;
        b.iter(|| {
            frame += 1;
            black_box(server.try_submit(black_box(frame)).is_ok())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_serve_run, bench_submission_path);
criterion_main!(benches);
