//! Times whole-zoo engine builds under the build-performance subsystem:
//! cold sequential, warm-timing-cache sequential, cold parallel farm, and
//! warm (memoized) farm, writing the results to `BENCH_build.json` in the
//! shared [`trtsim_bench::report`] schema (plus a telemetry snapshot next
//! to it).
//!
//! ```text
//! cargo run --release -p trtsim-bench --bin bench_build            # full zoo
//! cargo run --release -p trtsim-bench --bin bench_build -- --smoke # 1 model
//! ```
//!
//! Flags: `--smoke` shrinks the zoo to one model (CI), `--out PATH` moves the
//! report, `--git-rev SHA` stamps the report (`TRTSIM_GIT_REV` works too).
//! The process exits non-zero if the warm timing cache re-measures as many
//! kernels as the cold pass, or if any rebuilt engine is not bit-identical
//! to the cold sequential reference.

use std::sync::Arc;
use std::time::Instant;

use trtsim_bench::report::{git_rev, BenchReport, PhaseReport};
use trtsim_core::autotune::candidate_kernels;
use trtsim_core::{Builder, BuilderConfig, Engine, TimingCache};
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_gpu::kernel::KernelDesc;
use trtsim_gpu::timing::kernel_time_us;
use trtsim_kernels::catalog::PrecisionPolicy;
use trtsim_metrics::CacheStats;
use trtsim_models::ModelId;
use trtsim_repro::support::EngineFarm;

fn build_all(
    requests: &[(ModelId, Platform)],
    cache: &Arc<TimingCache>,
    threads: usize,
) -> Vec<Engine> {
    requests
        .iter()
        .map(|&(model, platform)| {
            Builder::new(
                DeviceSpec::pinned_clock(platform),
                BuilderConfig::default()
                    .with_build_seed(trtsim_repro::support::zoo_seed(model, platform, 0))
                    .with_build_threads(threads)
                    .with_timing_cache(cache.clone()),
            )
            .build(&model.descriptor())
            .expect("zoo models build")
        })
        .collect()
}

/// Builds one phase entry: engines-per-second throughput, cache counters.
fn phase(name: &str, wall_ms: f64, engines: usize, cache: CacheStats) -> PhaseReport {
    PhaseReport::new(name, wall_ms)
        .with_throughput(engines as f64 / (wall_ms / 1e3))
        .with_counter("timed_measurements", cache.misses)
        .with_counter("cache_hits", cache.hits)
        .with_counter("cache_misses", cache.misses)
}

/// Every autotune candidate kernel the builds above timed, grouped by the
/// pinned-clock device it was timed on — the query workload for the
/// cache-vs-retime micro-phases.
fn query_workload(requests: &[(ModelId, Platform)]) -> Vec<(DeviceSpec, Vec<KernelDesc>)> {
    Platform::all()
        .into_iter()
        .map(|platform| {
            let kernels = requests
                .iter()
                .filter(|&&(_, p)| p == platform)
                .flat_map(|&(model, _)| {
                    candidate_kernels(&model.descriptor(), PrecisionPolicy::fp16())
                        .expect("zoo models enumerate candidate kernels")
                })
                .collect();
            (DeviceSpec::pinned_clock(platform), kernels)
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_build.json".to_string());

    let models: Vec<ModelId> = if smoke {
        vec![ModelId::Mtcnn]
    } else {
        ModelId::all().to_vec()
    };
    let requests: Vec<(ModelId, Platform)> = models
        .iter()
        .flat_map(|&m| Platform::all().map(|p| (m, p)))
        .collect();
    let threads = trtsim_util::pool::auto_threads();
    let mut phases: Vec<PhaseReport> = Vec::new();

    // Phase 1: cold sequential — fresh timing cache, one build at a time.
    let seq_cache = Arc::new(TimingCache::new());
    let t = Instant::now();
    let reference = build_all(&requests, &seq_cache, 1);
    let cold_stats = seq_cache.stats();
    let cold_ms = t.elapsed().as_secs_f64() * 1e3;
    phases.push(phase(
        "cold_sequential",
        cold_ms,
        requests.len(),
        cold_stats,
    ));

    // Phase 2: warm-cache sequential rebuild — same cache, every timing query
    // should now hit.
    let t = Instant::now();
    let warm_engines = build_all(&requests, &seq_cache, 1);
    let warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let warm_stats = seq_cache.stats().since(cold_stats);
    phases.push(phase(
        "warm_sequential",
        warm_ms,
        requests.len(),
        warm_stats,
    ));

    // Phase 3: cold parallel farm — concurrent prefetch of the whole zoo
    // into a fresh farm (fresh timing cache inside).
    let farm = EngineFarm::new();
    let farm_requests: Vec<(ModelId, Platform, u64)> =
        requests.iter().map(|&(m, p)| (m, p, 0)).collect();
    let t = Instant::now();
    farm.prefetch_zoo(&farm_requests);
    let farm_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let farm_cold_stats = farm.stats().timing;
    phases.push(phase(
        "cold_parallel_farm",
        farm_cold_ms,
        requests.len(),
        farm_cold_stats,
    ));

    // Phase 4: warm farm — re-request the whole zoo; identical requests are
    // deduplicated into Arc hand-outs, which is what the experiment
    // harnesses see after the first build.
    let t = Instant::now();
    let farmed: Vec<Arc<Engine>> = farm_requests
        .iter()
        .map(|&(m, p, i)| farm.zoo(m, p, i))
        .collect();
    let farm_warm_ms = t.elapsed().as_secs_f64() * 1e3;
    let farm_warm_stats = farm.stats().timing.since(farm_cold_stats);
    phases.push(phase(
        "warm_farm",
        farm_warm_ms,
        requests.len(),
        farm_warm_stats,
    ));

    // Phases 5/6: query-level cache microbenchmark. `retime_queries` prices
    // what a cache miss costs (the analytic kernel-timing model, straight);
    // `warm_cache_queries` serves the identical query stream from the warm
    // sequential cache through the shard-local session fast path. The
    // `speedup_warm_cache_sequential` summary is the ratio of the two —
    // a timing-cache hit must be strictly cheaper than re-timing. (Earlier
    // revisions derived this ratio from whole-build wall times, where timing
    // queries are a rounding error next to graph passes and the measured
    // "speedup" was allocator noise — hence the historic 0.943.)
    // Each side is timed as the best of `PASSES` back-to-back sweeps: the
    // loops run for single-digit milliseconds, where one scheduler
    // preemption would otherwise swing the ratio by more than the margin
    // the floor assert checks.
    const PASSES: usize = 3;
    let workload = query_workload(&requests);
    let distinct: usize = workload.iter().map(|(_, ks)| ks.len()).sum();
    let reps = (1_000_000 / distinct.max(1)).max(1);
    let queries = (distinct * reps) as u64;

    let mut retime_ms = f64::INFINITY;
    let mut retime_sum = 0.0f64;
    for _ in 0..PASSES {
        let t = Instant::now();
        retime_sum = 0.0;
        for _ in 0..reps {
            for (device, kernels) in &workload {
                for kernel in kernels {
                    retime_sum += kernel_time_us(std::hint::black_box(kernel), device);
                }
            }
        }
        std::hint::black_box(retime_sum);
        retime_ms = retime_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    phases.push(
        PhaseReport::new("retime_queries", retime_ms)
            .with_throughput(queries as f64 / (retime_ms / 1e3))
            .with_counter("timed_measurements", queries)
            .with_counter("cache_hits", 0)
            .with_counter("cache_misses", queries)
            .with_counter("passes", PASSES as u64),
    );

    let before_queries = seq_cache.stats();
    let shard_hits_before: u64 = seq_cache.shard_hits().iter().sum();
    let mut cached_ms = f64::INFINITY;
    let mut cached_sum = 0.0f64;
    for _ in 0..PASSES {
        let t = Instant::now();
        cached_sum = 0.0;
        for _ in 0..reps {
            for (device, kernels) in &workload {
                let session = seq_cache.session(device);
                for kernel in kernels {
                    cached_sum += session.time_us(std::hint::black_box(kernel));
                }
            }
        }
        std::hint::black_box(cached_sum);
        cached_ms = cached_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let query_stats = seq_cache.stats().since(before_queries);
    let shard_hits = seq_cache.shard_hits();
    let shard_hit_total: u64 = shard_hits.iter().sum::<u64>() - shard_hits_before;
    let shards_touched = shard_hits.iter().filter(|&&h| h > 0).count() as u64;
    phases.push(
        PhaseReport::new("warm_cache_queries", cached_ms)
            .with_throughput(queries as f64 / (cached_ms / 1e3))
            .with_counter("timed_measurements", query_stats.misses)
            .with_counter("cache_hits", query_stats.hits)
            .with_counter("cache_misses", query_stats.misses)
            .with_counter("shard_fast_path_hits", shard_hit_total)
            .with_counter("shards_touched", shards_touched)
            .with_counter("passes", PASSES as u64),
    );
    assert_eq!(
        query_stats.misses, 0,
        "warm cache missed {} of {} candidate-kernel queries",
        query_stats.misses, queries
    );
    assert_eq!(
        retime_sum, cached_sum,
        "cached kernel times diverge from the analytic model"
    );

    // Invariants: the cache and the farm must be output-invariant.
    for (i, engine) in reference.iter().enumerate() {
        assert_eq!(
            engine, &warm_engines[i],
            "warm-cache rebuild of {:?} is not bit-identical",
            requests[i]
        );
        assert_eq!(
            engine,
            farmed[i].as_ref(),
            "farmed build of {:?} is not bit-identical",
            requests[i]
        );
    }
    assert!(
        warm_stats.misses < cold_stats.misses,
        "warm cache re-measured {} kernels, cold measured {}",
        warm_stats.misses,
        cold_stats.misses
    );

    let speedup_warm_cache = retime_ms / cached_ms;
    assert!(
        speedup_warm_cache >= 1.1,
        "timing-cache hits must clearly beat re-timing: {retime_ms:.2} ms retime vs {cached_ms:.2} ms cached ({speedup_warm_cache:.3}x)"
    );
    let speedup_warm_build = cold_ms / warm_ms;
    let speedup_warm_farm = cold_ms / farm_warm_ms;
    let report = BenchReport {
        benchmark: "bench_build".into(),
        mode: if smoke { "smoke" } else { "full" }.into(),
        git_rev: git_rev(&args),
        threads,
        throughput_unit: "engines_per_sec".into(),
        context: vec![(
            "models".into(),
            models
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(","),
        )],
        phases,
        summary: vec![
            ("speedup_warm_cache_sequential".into(), speedup_warm_cache),
            (
                "speedup_warm_build_vs_cold_build".into(),
                speedup_warm_build,
            ),
            (
                "speedup_warm_farm_vs_cold_sequential".into(),
                speedup_warm_farm,
            ),
        ],
        bit_identical: true,
    };
    report.write(&out_path);

    for p in &report.phases {
        println!(
            "{:<20} {:>10.2} ms  {:>8} timed measurements",
            p.name, p.wall_ms, p.counters[0].1
        );
    }
    println!(
        "speedup: warm-cache queries {speedup_warm_cache:.2}x, warm farm {speedup_warm_farm:.2}x -> {out_path}"
    );
}
