//! Times numeric inference through the three execution paths — the naive
//! per-call interpreter, the precompiled [`trtsim_core::InferencePlan`], and
//! the plan fanned out over worker threads — on a mid-size numeric zoo
//! model, writing the results to `BENCH_infer.json`.
//!
//! ```text
//! cargo run --release -p trtsim-bench --bin bench_infer            # full set
//! cargo run --release -p trtsim-bench --bin bench_infer -- --smoke # CI
//! ```
//!
//! Flags: `--smoke` shrinks the image set (CI), `--out PATH` moves the
//! report. The process exits non-zero if any planned output tensor is not
//! bit-identical to the interpreter's, if any label diverges, or if the
//! planned path fails to beat the naive one (`--smoke` allows 10% slack; the
//! full run demands the 3x the fast path is sold on).

use std::time::Instant;

use trtsim_core::runtime::ExecutionContext;
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_ir::Tensor;
use trtsim_models::ModelId;
use trtsim_repro::exp_accuracy::{AccuracyConfig, AccuracySetup};
use trtsim_util::pool::auto_threads;

/// One timed execution path.
struct Phase {
    name: &'static str,
    wall_ms: f64,
    images_per_sec: f64,
}

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64() * 1e3)
}

/// Everything the JSON report needs, bundled to keep one call site tidy.
struct Report<'a, 'e> {
    smoke: bool,
    model: ModelId,
    images: usize,
    threads: usize,
    phases: &'a [Phase],
    speedup_planned: f64,
    speedup_parallel: f64,
    plan: &'a trtsim_core::InferencePlan<'e>,
}

fn render_json(r: &Report) -> String {
    let Report {
        smoke,
        model,
        images,
        threads,
        phases,
        speedup_planned,
        speedup_parallel,
        plan,
    } = *r;
    let stats = plan.arena_stats();
    let mut out = String::from("{\n");
    out.push_str("  \"benchmark\": \"bench_infer\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"model\": \"{model}\",\n"));
    out.push_str(&format!("  \"images\": {images},\n"));
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str(&format!("  \"plan_steps\": {},\n", plan.step_count()));
    out.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"images_per_sec\": {:.1}}}{}\n",
            p.name,
            p.wall_ms,
            p.images_per_sec,
            if i + 1 < phases.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"speedup_planned_vs_naive\": {speedup_planned:.2},\n"
    ));
    out.push_str(&format!(
        "  \"speedup_planned_parallel_vs_naive\": {speedup_parallel:.2},\n"
    ));
    out.push_str(&format!(
        "  \"arena\": {{\"peak_live_bytes\": {}, \"total_activation_bytes\": {}, \"slots\": {}, \"utilization\": {:.3}}},\n",
        stats.peak_live_bytes,
        stats.total_activation_bytes,
        stats.slot_count,
        stats.utilization(),
    ));
    out.push_str("  \"bit_identical\": true\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_infer.json".to_string());

    let model = ModelId::Resnet18;
    let config = if smoke {
        AccuracyConfig::quick()
    } else {
        AccuracyConfig::default()
    };
    let setup = AccuracySetup::new(model, &config);
    let engine = setup.engine(Platform::Nx, 0);
    let images = setup.benign(&config);
    let inputs: Vec<&Tensor> = images.iter().map(|img| &img.image).collect();
    let threads = auto_threads();

    // Phase 1: the naive interpreter, one image at a time. A fresh context,
    // though the interpreter caches nothing on it anyway.
    let naive_ctx = ExecutionContext::new(&engine, DeviceSpec::pinned_clock(Platform::Nx));
    let (naive_outs, naive_ms) = timed(|| {
        inputs
            .iter()
            .map(|t| naive_ctx.infer_unplanned(t).expect("runs"))
            .collect::<Vec<_>>()
    });
    let naive_labels: Vec<usize> = naive_outs
        .iter()
        .map(|o| o[0].argmax().unwrap_or(0))
        .collect();

    // Phase 2: the precompiled plan, sequential. Plan compilation happens
    // inside the timed region (a fresh context compiles on first use) so the
    // speedup is honest about the one-time cost.
    let planned_ctx = ExecutionContext::new(&engine, DeviceSpec::pinned_clock(Platform::Nx));
    let (planned_outs, planned_ms) = timed(|| planned_ctx.infer_batch(&inputs, 1).expect("runs"));

    // Phase 3: the plan fanned out across worker threads.
    let parallel_ctx = ExecutionContext::new(&engine, DeviceSpec::pinned_clock(Platform::Nx));
    let (parallel_labels, parallel_ms) =
        timed(|| parallel_ctx.classify_batch(&inputs, threads).expect("runs"));

    // Invariant: the fast path is bit-identical to the interpreter — every
    // output tensor (exact f32 equality), and every label on every path.
    for (i, (naive, planned)) in naive_outs.iter().zip(&planned_outs).enumerate() {
        assert_eq!(
            naive, planned,
            "planned output of image {i} is not bit-identical"
        );
    }
    let planned_labels: Vec<usize> = planned_outs
        .iter()
        .map(|o| o[0].argmax().unwrap_or(0))
        .collect();
    assert_eq!(naive_labels, planned_labels, "planned labels diverge");
    assert_eq!(naive_labels, parallel_labels, "parallel labels diverge");

    let speedup_planned = naive_ms / planned_ms;
    let speedup_parallel = naive_ms / parallel_ms;
    if smoke {
        assert!(
            planned_ms <= naive_ms * 1.10,
            "planned path slower than naive: {planned_ms:.1} ms vs {naive_ms:.1} ms"
        );
    } else {
        assert!(
            speedup_parallel >= 3.0,
            "planned+parallel speedup {speedup_parallel:.2}x is below the 3x bar"
        );
    }

    let phases = vec![
        Phase {
            name: "naive_sequential",
            wall_ms: naive_ms,
            images_per_sec: inputs.len() as f64 / (naive_ms / 1e3),
        },
        Phase {
            name: "planned_sequential",
            wall_ms: planned_ms,
            images_per_sec: inputs.len() as f64 / (planned_ms / 1e3),
        },
        Phase {
            name: "planned_parallel",
            wall_ms: parallel_ms,
            images_per_sec: inputs.len() as f64 / (parallel_ms / 1e3),
        },
    ];
    let plan = planned_ctx.plan().expect("compiled during phase 2");
    let json = render_json(&Report {
        smoke,
        model,
        images: inputs.len(),
        threads,
        phases: &phases,
        speedup_planned,
        speedup_parallel,
        plan,
    });
    std::fs::write(&out_path, &json).expect("write report");

    for p in &phases {
        println!(
            "{:<20} {:>10.2} ms  {:>10.1} images/s",
            p.name, p.wall_ms, p.images_per_sec
        );
    }
    println!(
        "speedup: planned {speedup_planned:.2}x, planned+parallel {speedup_parallel:.2}x ({} threads) -> {out_path}",
        threads
    );
}
