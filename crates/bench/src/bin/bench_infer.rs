//! Times numeric inference through the three execution paths — the naive
//! per-call interpreter, the precompiled [`trtsim_core::InferencePlan`], and
//! the plan fanned out over worker threads — on a mid-size numeric zoo
//! model, writing the results to `BENCH_infer.json` in the shared
//! [`trtsim_bench::report`] schema (plus a telemetry snapshot next to it).
//!
//! ```text
//! cargo run --release -p trtsim-bench --bin bench_infer            # full set
//! cargo run --release -p trtsim-bench --bin bench_infer -- --smoke # CI
//! ```
//!
//! Flags: `--smoke` shrinks the image set (CI), `--out PATH` moves the
//! report, `--git-rev SHA` stamps the report (`TRTSIM_GIT_REV` works too).
//! The process exits non-zero if any planned output tensor is not
//! bit-identical to the interpreter's, if any label diverges, or if the
//! planned path fails to beat the naive one (`--smoke` demands 6x on its
//! small image set; the full run demands the 10x the lane kernels are sold
//! on), or if the size-classed arena slots sit below 40% utilization.

use std::time::Instant;

use trtsim_bench::report::{git_rev, BenchReport, PhaseReport};
use trtsim_core::runtime::ExecutionContext;
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_ir::Tensor;
use trtsim_models::ModelId;
use trtsim_repro::exp_accuracy::{AccuracyConfig, AccuracySetup};
use trtsim_util::pool::auto_threads;

fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed().as_secs_f64() * 1e3)
}

fn phase(name: &str, wall_ms: f64, images: usize, layout_converts: u64) -> PhaseReport {
    PhaseReport::new(name, wall_ms)
        .with_throughput(images as f64 / (wall_ms / 1e3))
        .with_counter("images", images as u64)
        .with_counter("layout_converts", layout_converts)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_infer.json".to_string());

    let model = ModelId::Resnet18;
    let config = if smoke {
        AccuracyConfig::quick()
    } else {
        AccuracyConfig::default()
    };
    let setup = AccuracySetup::new(model, &config);
    let engine = setup.engine(Platform::Nx, 0);
    let images = setup.benign(&config);
    let inputs: Vec<&Tensor> = images.iter().map(|img| &img.image).collect();
    let threads = auto_threads();

    // Phase 1: the naive interpreter, one image at a time. A fresh context,
    // though the interpreter caches nothing on it anyway. The interpreter is
    // CHW-only, so its layout-convert delta doubles as a zero check.
    let converts_at = trtsim_ir::layout::layout_convert_events;
    let naive_ctx = ExecutionContext::new(&engine, DeviceSpec::pinned_clock(Platform::Nx));
    let converts0 = converts_at();
    let (naive_outs, naive_ms) = timed(|| {
        inputs
            .iter()
            .map(|t| naive_ctx.infer_unplanned(t).expect("runs"))
            .collect::<Vec<_>>()
    });
    let naive_converts = converts_at() - converts0;
    let naive_labels: Vec<usize> = naive_outs
        .iter()
        .map(|o| o[0].argmax().unwrap_or(0))
        .collect();

    // Phase 2: the precompiled plan, sequential. Plan compilation happens
    // inside the timed region (a fresh context compiles on first use) so the
    // speedup is honest about the one-time cost.
    let planned_ctx = ExecutionContext::new(&engine, DeviceSpec::pinned_clock(Platform::Nx));
    let converts0 = converts_at();
    let (planned_outs, planned_ms) = timed(|| planned_ctx.infer_batch(&inputs, 1).expect("runs"));
    let planned_converts = converts_at() - converts0;

    // Phase 3: the plan fanned out across worker threads.
    let parallel_ctx = ExecutionContext::new(&engine, DeviceSpec::pinned_clock(Platform::Nx));
    let converts0 = converts_at();
    let (parallel_labels, parallel_ms) =
        timed(|| parallel_ctx.classify_batch(&inputs, threads).expect("runs"));
    let parallel_converts = converts_at() - converts0;

    // Invariant: the fast path is bit-identical to the interpreter — every
    // output tensor (exact f32 equality), and every label on every path.
    for (i, (naive, planned)) in naive_outs.iter().zip(&planned_outs).enumerate() {
        assert_eq!(
            naive, planned,
            "planned output of image {i} is not bit-identical"
        );
    }
    let planned_labels: Vec<usize> = planned_outs
        .iter()
        .map(|o| o[0].argmax().unwrap_or(0))
        .collect();
    assert_eq!(naive_labels, planned_labels, "planned labels diverge");
    assert_eq!(naive_labels, parallel_labels, "parallel labels diverge");

    let speedup_planned = naive_ms / planned_ms;
    let speedup_parallel = naive_ms / parallel_ms;
    if smoke {
        assert!(
            speedup_parallel >= 6.0,
            "planned+parallel speedup {speedup_parallel:.2}x is below the 6x smoke bar"
        );
    } else {
        assert!(
            speedup_parallel >= 10.0,
            "planned+parallel speedup {speedup_parallel:.2}x is below the 10x bar"
        );
    }

    let plan = planned_ctx.plan().expect("compiled during phase 2");
    let stats = plan.arena_stats();
    assert_eq!(naive_converts, 0, "interpreter path must stay CHW-only");
    assert!(
        stats.utilization() >= 0.4,
        "size-classed slots should sit near the liveness peak: {:.3}",
        stats.utilization()
    );
    let report = BenchReport {
        benchmark: "bench_infer".into(),
        mode: if smoke { "smoke" } else { "full" }.into(),
        git_rev: git_rev(&args),
        threads,
        throughput_unit: "images_per_sec".into(),
        context: vec![
            ("model".into(), model.to_string()),
            ("images".into(), inputs.len().to_string()),
            ("plan_steps".into(), plan.step_count().to_string()),
        ],
        phases: vec![
            phase("naive_sequential", naive_ms, inputs.len(), naive_converts),
            phase(
                "planned_sequential",
                planned_ms,
                inputs.len(),
                planned_converts,
            ),
            phase(
                "planned_parallel",
                parallel_ms,
                inputs.len(),
                parallel_converts,
            ),
        ],
        summary: vec![
            ("speedup_planned_vs_naive".into(), speedup_planned),
            ("speedup_planned_parallel_vs_naive".into(), speedup_parallel),
            ("arena_peak_live_bytes".into(), stats.peak_live_bytes as f64),
            (
                "arena_total_activation_bytes".into(),
                stats.total_activation_bytes as f64,
            ),
            (
                "arena_slot_capacity_bytes".into(),
                stats.slot_capacity_bytes as f64,
            ),
            ("arena_slots".into(), stats.slot_count as f64),
            ("arena_utilization".into(), stats.utilization()),
            ("arena_footprint_ratio".into(), stats.footprint_ratio()),
            (
                "layout_converts_per_image".into(),
                plan.layout_converts_per_execution() as f64,
            ),
        ],
        bit_identical: true,
    };
    report.write(&out_path);

    for p in &report.phases {
        println!(
            "{:<20} {:>10.2} ms  {:>10.1} images/s",
            p.name,
            p.wall_ms,
            p.throughput.unwrap_or(0.0)
        );
    }
    println!(
        "speedup: planned {speedup_planned:.2}x, planned+parallel {speedup_parallel:.2}x ({} threads) -> {out_path}",
        threads
    );
}
