//! Predictive-scheduling benchmark: the same heterogeneous 4-board fleet
//! and the same diurnal + burst open-loop traces, served twice — once with
//! the static `(queue_depth + 1) × service_us` heuristic and plain
//! deadline accounting, once with the learned latency model driving
//! deadline-based admission, SLO-aware batching, and predicted-finish-time
//! routing. Results land in `BENCH_serving.json` in the shared
//! [`trtsim_bench::report`] schema (plus a telemetry snapshot next to it).
//!
//! ```text
//! cargo run --release -p trtsim-bench --bin bench_serving            # full
//! cargo run --release -p trtsim-bench --bin bench_serving -- --smoke # CI
//! ```
//!
//! Flags: `--smoke` shrinks the traces (CI), `--out PATH` moves the
//! report, `--git-rev SHA` stamps it. The process exits non-zero unless,
//! on every trace, the predictive arm achieves strictly higher
//! goodput-under-SLO and a strictly lower deadline-miss rate than the
//! heuristic arm. The summary also reports the predictor's prequential
//! MAPE against observed latencies and, for the paper's Table XIII
//! argument, the analytic BSP model's error spread across four build
//! seeds of the same network (λs calibrated once, on build 0).

use trtsim_bench::report::{git_rev, BenchReport, PhaseReport};
use trtsim_core::engine::Engine;
use trtsim_core::fleet::{Fleet, FleetBuilder, FleetConfig};
use trtsim_core::reqtrace::TraceOutcome;
use trtsim_core::runtime::TimingOptions;
use trtsim_core::serving::ServerConfig;
use trtsim_data::traffic::ArrivalTrace;
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_models::ModelId;
use trtsim_perfmodel::learned::bsp_cross_build_error_percent;
use trtsim_repro::support::EngineFarm;
use trtsim_util::pool::auto_threads;

fn devices() -> Vec<(&'static str, DeviceSpec, usize)> {
    vec![
        ("nx_pinned", DeviceSpec::pinned_clock(Platform::Nx), 1),
        ("nx_max", DeviceSpec::max_clock(Platform::Nx), 4),
        ("agx_pinned", DeviceSpec::pinned_clock(Platform::Agx), 4),
        ("agx_max", DeviceSpec::max_clock(Platform::Agx), 4),
    ]
}

fn server_config(model: ModelId, workers: usize, queue: usize, deadline_us: f64) -> ServerConfig {
    ServerConfig::default()
        .with_workers(workers)
        .with_queue_capacity(queue)
        .with_max_batch_size(4)
        // Classic batching window: a partial batch is held up to this long
        // waiting for stragglers. The heuristic arm always pays it; the
        // predictive arm's SLO-aware cap closes the batch early whenever the
        // predicted p99 says the wait would blow the deadline.
        .with_batch_timeout_us(8_000.0)
        .with_deadline_us(deadline_us)
        .with_timing(
            TimingOptions::default()
                .without_engine_upload()
                .with_host_glue_us(model.info().host_glue_us)
                .with_run_jitter_sd(0.0),
        )
}

fn build_fleet(
    engine: &Engine,
    model: ModelId,
    queue: usize,
    deadline_us: f64,
    predictive: bool,
    fleet_config: FleetConfig,
) -> Fleet {
    let mut builder = FleetBuilder::new();
    for (device, spec, _) in devices() {
        builder = builder.device(device, spec);
    }
    for (device, _, workers) in devices() {
        let config = server_config(model, workers, queue, deadline_us).with_predictive(predictive);
        builder = builder
            .replica(device, engine, config)
            .expect("known device");
    }
    builder
        .start(fleet_config.with_predictive(predictive))
        .expect("fleet starts")
}

struct ArmResult {
    /// Completions inside the measured window that met the deadline, per
    /// second of trace horizon — the goodput-under-SLO headline.
    goodput_fps: f64,
    /// Late completions / completed, inside the measured window.
    miss_rate: f64,
    completed: u64,
    missed: u64,
    deadline_rejected: u64,
    queue_rejected: u64,
    mape_percent: Option<f64>,
    wall_ms: f64,
}

/// Runs one scheduling arm: warm-up replay (light steady load, which also
/// trains the predictive arm's shared model past its cold gate), then the
/// measured trace shifted past the warm-up so its latencies are clean.
/// Offers each arrival once the fleet's simulated clock has caught up to
/// it (minus a small batching lookahead), or immediately once the fleet is
/// idle. Open-loop replay paced this way keeps the live queue depths — the
/// predictor's training signals and the router's scores — aligned with
/// *simulated* congestion: an unpaced loop would dump the whole trace in
/// microseconds of real time and every signal would just measure CPU speed.
fn paced_replay(fleet: &Fleet, engine: &Engine, arrivals: &[f64], first_frame: u64) -> (u64, u64) {
    const LOOKAHEAD_US: f64 = 2_000.0;
    let mut queue_rejected = 0u64;
    let mut deadline_rejected = 0u64;
    for (i, &t) in arrivals.iter().enumerate() {
        while fleet.simulated_clock_us() + LOOKAHEAD_US < t {
            if fleet.in_system() == 0 {
                // Fully idle: simulated time only advances when the next
                // arrival is enqueued (its arrival gate fast-forwards the
                // clock), so waiting any longer would deadlock the pacer.
                break;
            }
            std::thread::yield_now();
        }
        match fleet.submit(engine.name(), first_frame + i as u64, t) {
            Ok(()) => {}
            Err(trtsim_core::serving::ServingError::DeadlineUnmeetable) => deadline_rejected += 1,
            Err(_) => queue_rejected += 1,
        }
    }
    (deadline_rejected, queue_rejected)
}

fn run_arm(
    engine: &Engine,
    model: ModelId,
    trace: &ArrivalTrace,
    warmup: &ArrivalTrace,
    deadline_us: f64,
    predictive: bool,
) -> ArmResult {
    let started = std::time::Instant::now();
    let queue = warmup.len() + trace.len();
    let fleet = build_fleet(
        engine,
        model,
        queue,
        deadline_us,
        predictive,
        FleetConfig::default(),
    );
    let latency_model = fleet.latency_model();
    paced_replay(&fleet, engine, &warmup.arrivals_us, 0);
    if let Some(model) = &latency_model {
        // Submission is real-time while training rides on completions: wait
        // for the warm-up's completions to warm the shared model so the
        // measured window runs fully predictive from its first frame.
        while !model.is_warm() {
            std::thread::yield_now();
        }
    }
    // Shift the measured trace past everything the warm-up can still have
    // in flight; the workers' arrival gating idles the streams up to the
    // first shifted timestamp, so measured latencies start clean.
    let offset_us = warmup.duration_us() + 500_000.0;
    let shifted: Vec<f64> = trace.arrivals_us.iter().map(|t| t + offset_us).collect();
    let (deadline_rejected, queue_rejected) =
        paced_replay(&fleet, engine, &shifted, warmup.len() as u64);
    let stats = fleet.drain();
    // Window accounting from per-request records: measured frames are
    // exactly those arriving at or after the shift.
    let mut completed = 0u64;
    let mut missed = 0u64;
    for replica in &stats.replicas {
        for c in &replica.stats.completions {
            if c.arrival_us < offset_us - 1.0 {
                continue;
            }
            completed += 1;
            if (c.done_us - c.arrival_us).max(0.0) > deadline_us {
                missed += 1;
            }
        }
    }
    let horizon_s = trace.duration_us() / 1e6;
    ArmResult {
        goodput_fps: (completed - missed) as f64 / horizon_s.max(1e-12),
        miss_rate: missed as f64 / (completed.max(1)) as f64,
        completed,
        missed,
        deadline_rejected,
        queue_rejected,
        mape_percent: latency_model.as_ref().and_then(|m| m.mape_percent()),
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    }
}

/// Runs one arm five times and keeps the median-goodput run, with the
/// median miss rate spliced in from its own independent ranking. The serving
/// stack is real threads racing against a paced replay, so single runs
/// wobble; medians make the headline comparison reproducible without hiding
/// the wobble (each median is a genuinely measured value).
fn median_arm(
    engine: &Engine,
    model: ModelId,
    trace: &ArrivalTrace,
    warmup: &ArrivalTrace,
    deadline_us: f64,
    predictive: bool,
) -> ArmResult {
    let mut runs: Vec<ArmResult> = (0..5)
        .map(|_| run_arm(engine, model, trace, warmup, deadline_us, predictive))
        .collect();
    let mut miss_rates: Vec<f64> = runs.iter().map(|r| r.miss_rate).collect();
    miss_rates.sort_by(f64::total_cmp);
    let median_miss = miss_rates[2];
    runs.sort_by(|a, b| a.goodput_fps.total_cmp(&b.goodput_fps));
    let mut median = runs.swap_remove(2);
    median.miss_rate = median_miss;
    median
}

/// One plain HTTP/1.1 GET against the probe fleet's own telemetry
/// endpoint, headers included (status-line assertions want them).
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect telemetry endpoint");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("send request");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read response");
    body
}

/// The observability acceptance gate: replays the burst trace once against
/// a heuristic fleet (the arm guaranteed to blow deadlines at the peaks)
/// with a live telemetry endpoint, then asserts the flight recorder's
/// contract end to end — a deadline-missed trace is retained, its phase
/// spans sum to the end-to-end latency, the `/traces` routes serve it over
/// HTTP, and its id rides the latency histogram as an OpenMetrics exemplar.
fn trace_probe(
    engine: &Engine,
    model: ModelId,
    trace: &ArrivalTrace,
    warmup: &ArrivalTrace,
    deadline_us: f64,
) -> PhaseReport {
    let started = std::time::Instant::now();
    let queue = warmup.len() + trace.len();
    let fleet_config = FleetConfig {
        telemetry_addr: Some("127.0.0.1:0".parse().expect("loopback addr")),
        ..FleetConfig::default()
    };
    let fleet = build_fleet(engine, model, queue, deadline_us, false, fleet_config);
    paced_replay(&fleet, engine, &warmup.arrivals_us, 0);
    let offset_us = warmup.duration_us() + 500_000.0;
    let shifted: Vec<f64> = trace.arrivals_us.iter().map(|t| t + offset_us).collect();
    paced_replay(&fleet, engine, &shifted, warmup.len() as u64);
    while fleet.in_system() > 0 {
        std::thread::yield_now();
    }

    let recorder = fleet.flight_recorder();
    assert!(
        recorder.deadline_missed_seen() >= 1,
        "burst replay produced no deadline-missed request — retention untestable"
    );
    let retained = recorder.traces();
    let missed = retained
        .iter()
        .find(|t| {
            t.outcome
                == TraceOutcome::Completed {
                    deadline_missed: true,
                }
        })
        .expect("tail retention must keep at least one deadline-missed trace");
    let latency = missed.latency_us();
    assert!(
        (missed.phase_sum_us() - latency).abs() <= 1e-6 * latency.max(1.0),
        "phase spans sum to {} us but end-to-end latency is {} us",
        missed.phase_sum_us(),
        latency
    );

    let addr = fleet.telemetry_addr().expect("telemetry endpoint bound");
    let id = missed.id.to_string();
    let index = http_get(addr, "/traces");
    assert!(index.starts_with("HTTP/1.1 200"), "GET /traces failed");
    assert!(
        index.contains(&id),
        "retained trace {id} missing from the /traces index"
    );
    let detail = http_get(addr, &format!("/traces/{id}"));
    assert!(
        detail.starts_with("HTTP/1.1 200") && detail.contains("\"phases\""),
        "GET /traces/{id} did not serve the span tree"
    );
    let chrome = http_get(addr, &format!("/traces/{id}/chrome"));
    assert!(
        chrome.starts_with("HTTP/1.1 200") && chrome.contains("\"traceEvents\""),
        "GET /traces/{id}/chrome did not serve a chrome-trace document"
    );
    let metrics = http_get(addr, "/metrics");
    assert!(
        metrics.lines().any(|line| {
            line.starts_with("trtsim_server_latency_us_bucket") && line.contains("# {trace_id=\"")
        }),
        "no trace-id exemplar on any trtsim_server_latency_us bucket"
    );

    let phase = PhaseReport::new("trace_probe", started.elapsed().as_secs_f64() * 1e3)
        .with_counter("traces_recorded", recorder.recorded())
        .with_counter("traces_retained", recorder.retained())
        .with_counter("traces_sampled", recorder.sampled())
        .with_counter("traces_evicted", recorder.evicted())
        .with_counter("deadline_missed_traces", recorder.deadline_missed_seen());
    fleet.drain();
    phase
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serving.json".to_string());

    let model = ModelId::Googlenet;
    let frames = if smoke { 1536 } else { 4096 };
    // Long enough past the model's 64-observation cold gate that most of
    // the warm-up trains *on-policy* — under the SLO batch cap and admission
    // the measured window will actually run with — rather than on the cold
    // full-window batching whose extra wait would inflate the base weights.
    let warmup_frames = 512;
    // ~25 ms per-request SLO: a few batch-1 service times of headroom on
    // the slowest board, brutal against the queueing delay both traces
    // build up at their peaks.
    let deadline_us = 25_000.0;
    let engine = EngineFarm::global().zoo(model, Platform::Nx, 0);
    // Bursty warm-up: training data must span the queueing regimes the
    // measured traces hit, or the model's queue-depth terms never learn and
    // admission control flies blind.
    let warmup = ArrivalTrace::burst(1_500.0, 100.0, 30_000.0, 0.3, warmup_frames, 7);
    // Both traces average ~0.7x the fleet's batch-4 drain capacity
    // (~3.9k fps) with peaks well above it: transient overload with
    // recovery, the regime scheduling actually decides. Sustained overload
    // would drown every policy alike; sustained underload gives nothing to
    // decide.
    let traces = [
        (
            "diurnal",
            ArrivalTrace::diurnal(10_000.0, 150.0, 50_000.0, frames, 11),
        ),
        (
            "burst",
            ArrivalTrace::burst(2_500.0, 60.0, 25_000.0, 0.15, frames, 13),
        ),
    ];

    let mut phases = Vec::new();
    let mut summary = Vec::new();
    let mut all_pass = true;
    for (name, trace) in &traces {
        let heuristic = median_arm(&engine, model, trace, &warmup, deadline_us, false);
        let predictive = median_arm(&engine, model, trace, &warmup, deadline_us, true);
        for (arm, r) in [("heuristic", &heuristic), ("predictive", &predictive)] {
            phases.push(
                PhaseReport::new(format!("{name}_{arm}"), r.wall_ms)
                    .with_throughput(r.goodput_fps)
                    .with_counter("completed", r.completed)
                    .with_counter("deadline_missed", r.missed)
                    .with_counter("deadline_rejected", r.deadline_rejected)
                    .with_counter("queue_rejected", r.queue_rejected),
            );
            summary.push((format!("{name}_{arm}_goodput_under_slo_fps"), r.goodput_fps));
            summary.push((format!("{name}_{arm}_deadline_miss_rate"), r.miss_rate));
        }
        summary.push((
            format!("{name}_goodput_gain"),
            predictive.goodput_fps / heuristic.goodput_fps.max(1e-12),
        ));
        if let Some(mape) = predictive.mape_percent {
            summary.push((format!("{name}_predictor_mape_percent"), mape));
        }
        println!(
            "{name:<8} goodput-under-SLO {:>8.1} fps predictive vs {:>8.1} fps heuristic, \
             miss rate {:.3} vs {:.3}",
            predictive.goodput_fps,
            heuristic.goodput_fps,
            predictive.miss_rate,
            heuristic.miss_rate
        );
        if predictive.goodput_fps <= heuristic.goodput_fps {
            eprintln!("FAIL: {name}: predictive goodput-under-SLO does not beat the heuristic");
            all_pass = false;
        }
        if predictive.miss_rate >= heuristic.miss_rate {
            eprintln!("FAIL: {name}: predictive deadline-miss rate is not lower");
            all_pass = false;
        }
    }

    // Observability gate: replay the burst trace once more with the flight
    // recorder's HTTP routes live and assert the tracing contract (tail
    // retention, phase accounting, /traces routes, histogram exemplars).
    let (_, burst) = &traces[1];
    let probe = trace_probe(&engine, model, burst, &warmup, deadline_us);
    for (k, v) in &probe.counters {
        summary.push((format!("trace_probe_{k}"), *v as f64));
    }
    phases.push(probe);
    println!("trace    probe passed: retention, phase sums, /traces, exemplars");

    // Table XIII context: the analytic BSP model calibrated against build 0,
    // asked to predict builds 0..4 of the same network — its error swings
    // with the build's kernel mapping, where the learned model's prequential
    // MAPE above tracks whatever build is actually serving.
    let device = DeviceSpec::xavier_nx();
    let builds: Vec<Engine> = (0..4)
        .map(|seed| (*EngineFarm::global().zoo(model, Platform::Nx, seed)).clone())
        .collect();
    let bsp_errors = bsp_cross_build_error_percent(&builds, &device, 17);
    for (k, err) in bsp_errors.iter().enumerate() {
        summary.push((format!("bsp_error_percent_build{k}"), *err));
    }
    let bsp_spread = bsp_errors.iter().fold(0.0f64, |a, &b| a.max(b))
        - bsp_errors.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    summary.push(("bsp_cross_build_error_spread_percent".into(), bsp_spread));

    let report = BenchReport {
        benchmark: "bench_serving".into(),
        mode: if smoke { "smoke" } else { "full" }.into(),
        git_rev: git_rev(&args),
        threads: auto_threads(),
        throughput_unit: "frames_per_sec".into(),
        context: vec![
            ("model".into(), model.to_string()),
            ("frames".into(), frames.to_string()),
            ("deadline_us".into(), format!("{deadline_us}")),
            (
                "devices".into(),
                devices()
                    .iter()
                    .map(|(d, _, _)| *d)
                    .collect::<Vec<_>>()
                    .join(","),
            ),
        ],
        phases,
        summary,
        bit_identical: all_pass,
    };
    report.write(&out_path);
    println!("-> {out_path}");
    assert!(
        all_pass,
        "predictive-scheduling benchmark invariants failed"
    );
}
