//! Fleet-serving benchmark: a heterogeneous 4-board Jetson cluster behind
//! the [`trtsim_core::fleet`] router versus each board alone, under the
//! open-loop Poisson and burst traces from [`trtsim_data::traffic`].
//! Results land in `BENCH_fleet.json` in the shared
//! [`trtsim_bench::report`] schema (plus a telemetry snapshot next to it).
//!
//! ```text
//! cargo run --release -p trtsim-bench --bin bench_fleet            # full set
//! cargo run --release -p trtsim-bench --bin bench_fleet -- --smoke # CI
//! ```
//!
//! Flags: `--smoke` shrinks the traces (CI), `--out PATH` moves the report,
//! `--git-rev SHA` stamps the report (`TRTSIM_GIT_REV` or the checkout's
//! `HEAD` otherwise). The process exits non-zero unless, on every trace,
//! the fleet's aggregate goodput beats the best single board and the
//! router steers load away from the saturated board (the single-worker
//! pinned NX must serve less than its uniform share).

use trtsim_bench::report::{git_rev, BenchReport, PhaseReport};
use trtsim_core::fleet::{FleetBuilder, FleetConfig, FleetStats};
use trtsim_core::runtime::TimingOptions;
use trtsim_core::serving::{InferenceServer, ServerConfig};
use trtsim_data::traffic::ArrivalTrace;
use trtsim_gpu::device::{DeviceSpec, Platform};
use trtsim_models::ModelId;
use trtsim_repro::support::EngineFarm;
use trtsim_util::pool::auto_threads;

/// The saturated board: pinned clocks and a single worker.
const WEAK: &str = "nx_pinned";

fn devices() -> Vec<(&'static str, DeviceSpec, usize)> {
    vec![
        (WEAK, DeviceSpec::pinned_clock(Platform::Nx), 1),
        ("nx_max", DeviceSpec::max_clock(Platform::Nx), 4),
        ("agx_pinned", DeviceSpec::pinned_clock(Platform::Agx), 4),
        ("agx_max", DeviceSpec::max_clock(Platform::Agx), 4),
    ]
}

fn config(model: ModelId, workers: usize, queue: usize) -> ServerConfig {
    ServerConfig::default()
        .with_workers(workers)
        .with_queue_capacity(queue)
        .with_timing(
            TimingOptions::default()
                .without_engine_upload()
                .with_host_glue_us(model.info().host_glue_us)
                .with_run_jitter_sd(0.0),
        )
}

struct TraceRun {
    fleet: FleetStats,
    fleet_wall_ms: f64,
    /// `(device, solo goodput fps, wall ms)` per board.
    solo: Vec<(&'static str, f64, f64)>,
}

fn run_trace(model: ModelId, trace: &ArrivalTrace, queue: usize) -> TraceRun {
    let engine = EngineFarm::global().zoo(model, Platform::Nx, 0);
    // Each board alone, fed the identical trace.
    let mut solo = Vec::new();
    for (device, spec, workers) in devices() {
        let started = std::time::Instant::now();
        let server = InferenceServer::start(&engine, &spec, config(model, workers, queue))
            .expect("server starts");
        for (i, &t) in trace.arrivals_us.iter().enumerate() {
            let _ = server.try_submit_at(i as u64, t);
        }
        let stats = server.drain();
        solo.push((
            device,
            stats.aggregate_fps,
            started.elapsed().as_secs_f64() * 1e3,
        ));
    }
    // The whole cluster behind the router, same trace.
    let started = std::time::Instant::now();
    let mut builder = FleetBuilder::new();
    for (device, spec, _) in devices() {
        builder = builder.device(device, spec);
    }
    for (device, _, workers) in devices() {
        builder = builder
            .replica(device, &engine, config(model, workers, queue))
            .expect("known device");
    }
    let fleet = builder.start(FleetConfig::default()).expect("fleet starts");
    fleet.replay(engine.name(), &trace.arrivals_us, 0);
    let stats = fleet.drain();
    TraceRun {
        fleet: stats,
        fleet_wall_ms: started.elapsed().as_secs_f64() * 1e3,
        solo,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_fleet.json".to_string());

    let model = ModelId::Googlenet;
    let frames = if smoke { 64 } else { 384 };
    let queue = frames; // everything offered fits fleet- and solo-wide
    let traces = [
        ("poisson", ArrivalTrace::poisson(500.0, frames, 11)),
        (
            "burst",
            ArrivalTrace::burst(4_000.0, 50.0, 20_000.0, 0.25, frames, 13),
        ),
    ];

    let mut phases = Vec::new();
    let mut summary = Vec::new();
    let mut all_pass = true;
    let mut fleet_fps_by_trace = Vec::new();
    for (name, trace) in &traces {
        let run = run_trace(model, trace, queue);
        let fleet_fps = run.fleet.aggregate_fps;
        let best_solo = run
            .solo
            .iter()
            .map(|&(_, fps, _)| fps)
            .fold(0.0f64, f64::max);
        let weak_share = run.fleet.completed_share(WEAK);
        let speedup = fleet_fps / best_solo;

        for &(device, fps, wall_ms) in &run.solo {
            phases.push(
                PhaseReport::new(format!("{name}_solo_{device}"), wall_ms).with_throughput(fps),
            );
        }
        phases.push(
            PhaseReport::new(format!("{name}_fleet"), run.fleet_wall_ms)
                .with_throughput(fleet_fps)
                .with_counter("completed", run.fleet.completed)
                .with_counter("accepted", run.fleet.accepted)
                .with_counter("rejected", run.fleet.rejected)
                .with_counter("dropped", run.fleet.dropped)
                .with_counter("devices", run.fleet.replicas.len() as u64),
        );
        summary.push((format!("{name}_fleet_goodput_fps"), fleet_fps));
        summary.push((format!("{name}_best_solo_goodput_fps"), best_solo));
        summary.push((format!("{name}_fleet_speedup"), speedup));
        summary.push((format!("{name}_p99_us"), run.fleet.latency.p99_us));
        summary.push((format!("{name}_weak_device_share"), weak_share));
        summary.push((format!("{name}_offered_rate_fps"), trace.offered_rate_fps()));

        println!(
            "{name:<8} fleet {fleet_fps:>8.1} fps vs best solo {best_solo:>8.1} fps \
             ({speedup:.2}x), weak share {weak_share:.3}"
        );
        // The two headline claims, checked on every trace: capacity
        // aggregates across the cluster, and the router starves the
        // saturated board rather than queueing behind it.
        if speedup <= 1.0 {
            eprintln!("FAIL: {name}: fleet goodput does not beat the best single device");
            all_pass = false;
        }
        if weak_share >= 0.25 {
            eprintln!("FAIL: {name}: saturated device still serves {weak_share:.3} of the trace");
            all_pass = false;
        }
        fleet_fps_by_trace.push(fleet_fps);
    }
    // Regression guard for the per-phase measurement bug: each phase must
    // measure its own run. With open-loop arrival gating in the workers,
    // Poisson and burst traces shape the timeline differently, so their
    // fleet throughputs cannot coincide; byte-identical numbers mean one
    // measurement was reused across trace kinds.
    if (fleet_fps_by_trace[0] - fleet_fps_by_trace[1]).abs() < 1e-9 {
        eprintln!(
            "FAIL: poisson and burst phases report identical fleet throughput              ({} fps) — a phase measurement is being reused",
            fleet_fps_by_trace[0]
        );
        all_pass = false;
    }

    let report = BenchReport {
        benchmark: "bench_fleet".into(),
        mode: if smoke { "smoke" } else { "full" }.into(),
        git_rev: git_rev(&args),
        threads: auto_threads(),
        throughput_unit: "frames_per_sec".into(),
        context: vec![
            ("model".into(), model.to_string()),
            ("frames".into(), frames.to_string()),
            (
                "devices".into(),
                devices()
                    .iter()
                    .map(|(d, _, _)| *d)
                    .collect::<Vec<_>>()
                    .join(","),
            ),
        ],
        phases,
        summary,
        bit_identical: all_pass,
    };
    report.write(&out_path);
    println!("-> {out_path}");
    assert!(all_pass, "fleet benchmark invariants failed");
}
