//! The shared machine-diffable report schema for the bench binaries.
//!
//! `bench_build` and `bench_infer` historically wrote two ad-hoc JSON
//! shapes; diffing the bench trajectory across commits meant special-casing
//! each file. Both now emit this one schema:
//!
//! ```json
//! {
//!   "tool": "trtsim-bench",
//!   "schema_version": 1,
//!   "benchmark": "bench_infer",
//!   "mode": "smoke",
//!   "git_rev": "unknown",
//!   "threads": 16,
//!   "wall_unit": "ms",
//!   "throughput_unit": "images_per_sec",
//!   "context": {"model": "resnet18"},
//!   "phases": [
//!     {"name": "naive_sequential", "wall_ms": 10.1,
//!      "throughput": 99.0, "counters": {"cache_hits": 12}}
//!   ],
//!   "summary": {"speedup_planned_vs_naive": 3.1},
//!   "bit_identical": true
//! }
//! ```
//!
//! `git_rev` resolves in provenance order: the harness's `--git-rev SHA`
//! flag, the `TRTSIM_GIT_REV` environment variable, then a `git rev-parse
//! --short HEAD` of the working directory — so checked-in reports carry a
//! real revision even when the harness forgets to pass one. Only outside a
//! git checkout (a tarball build) does it fall back to `"unknown"`. Wall
//! time is always milliseconds; the per-benchmark throughput unit is named
//! once at the top level.

/// One timed phase of a benchmark run.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Phase name (snake_case, stable across commits).
    pub name: String,
    /// Wall-clock time, milliseconds.
    pub wall_ms: f64,
    /// Work rate in the report's `throughput_unit`, when meaningful.
    pub throughput: Option<f64>,
    /// Integer event counters attributed to this phase.
    pub counters: Vec<(String, u64)>,
}

impl PhaseReport {
    /// A phase with no throughput and no counters; chain `with_*` to fill.
    pub fn new(name: impl Into<String>, wall_ms: f64) -> Self {
        Self {
            name: name.into(),
            wall_ms,
            throughput: None,
            counters: Vec::new(),
        }
    }

    /// Sets the phase throughput (in the report's `throughput_unit`).
    pub fn with_throughput(mut self, throughput: f64) -> Self {
        self.throughput = Some(throughput);
        self
    }

    /// Appends one event counter.
    pub fn with_counter(mut self, name: impl Into<String>, value: u64) -> Self {
        self.counters.push((name.into(), value));
        self
    }
}

/// A full bench report in the shared schema.
///
/// Keys are owned `String`s so producers other than the two bench bins —
/// notably the scenario driver's emit layer — can generate phase and
/// summary names at runtime.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Which binary produced this (`bench_build`, `bench_infer`,
    /// `scenario`).
    pub benchmark: String,
    /// `smoke` (CI-sized) or `full`.
    pub mode: String,
    /// Git revision the harness passed in; `unknown` when it didn't.
    pub git_rev: String,
    /// Worker threads available to the parallel phases.
    pub threads: usize,
    /// Unit of every phase's `throughput` field.
    pub throughput_unit: String,
    /// Free-form string context (model names, image counts).
    pub context: Vec<(String, String)>,
    /// Timed phases, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Derived numeric results (speedups, footprints).
    pub summary: Vec<(String, f64)>,
    /// Whether every cross-phase output comparison was bit-identical.
    pub bit_identical: bool,
}

impl BenchReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"tool\": \"trtsim-bench\",\n");
        out.push_str("  \"schema_version\": 1,\n");
        out.push_str(&format!(
            "  \"benchmark\": \"{}\",\n",
            json_escape(&self.benchmark)
        ));
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!(
            "  \"git_rev\": \"{}\",\n",
            json_escape(&self.git_rev)
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str("  \"wall_unit\": \"ms\",\n");
        out.push_str(&format!(
            "  \"throughput_unit\": \"{}\",\n",
            self.throughput_unit
        ));
        out.push_str("  \"context\": {");
        for (i, (k, v)) in self.context.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)));
        }
        out.push_str("},\n");
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"wall_ms\": {:.3}, \"throughput\": {}, \"counters\": {{",
                json_escape(&p.name),
                p.wall_ms,
                match p.throughput {
                    Some(t) => format!("{t:.3}"),
                    None => "null".to_string(),
                },
            ));
            for (j, (k, v)) in p.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {v}", json_escape(k)));
            }
            out.push_str("}}");
            if i + 1 < self.phases.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {");
        for (i, (k, v)) in self.summary.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {v:.3}", json_escape(k)));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"bit_identical\": {}\n}}\n",
            self.bit_identical
        ));
        out
    }

    /// Writes the JSON report to `path`, plus the process telemetry
    /// snapshot next to it (see [`telemetry_path_for`]).
    ///
    /// # Panics
    ///
    /// Panics if either file cannot be written — a bench run whose report
    /// is lost should fail loudly.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json()).expect("write bench report");
        trtsim_metrics::Registry::global()
            .write_json(telemetry_path_for(path))
            .expect("write telemetry snapshot");
    }
}

/// Where a report's telemetry snapshot lands: `X.json` → `X.telemetry.json`
/// (or `X.telemetry.json` appended when the report has no `.json` suffix).
pub fn telemetry_path_for(report_path: &str) -> String {
    match report_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.telemetry.json"),
        None => format!("{report_path}.telemetry.json"),
    }
}

/// Resolves the git revision stamped into reports: `--git-rev SHA` in
/// `args`, else the `TRTSIM_GIT_REV` environment variable, else `git
/// rev-parse --short HEAD`, else `unknown` (tarball builds with no
/// checkout).
pub fn git_rev(args: &[String]) -> String {
    args.iter()
        .position(|a| a == "--git-rev")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("TRTSIM_GIT_REV").ok())
        .filter(|s| !s.is_empty())
        .or_else(rev_parse_head)
        .unwrap_or_else(|| "unknown".to_string())
}

/// The working directory's `HEAD`, short form, when inside a git checkout.
fn rev_parse_head() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let rev = String::from_utf8(out.stdout).ok()?.trim().to_string();
    (!rev.is_empty()).then_some(rev)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_the_shared_fields() {
        let report = BenchReport {
            benchmark: "bench_test".into(),
            mode: "smoke".into(),
            git_rev: "abc123".into(),
            threads: 4,
            throughput_unit: "items_per_sec".into(),
            context: vec![("model".into(), "m".into())],
            phases: vec![PhaseReport::new("p1", 1.5)
                .with_throughput(10.0)
                .with_counter("hits", 3)],
            summary: vec![("speedup".into(), 2.0)],
            bit_identical: true,
        };
        let json = report.to_json();
        for needle in [
            "\"tool\": \"trtsim-bench\"",
            "\"schema_version\": 1",
            "\"git_rev\": \"abc123\"",
            "\"wall_unit\": \"ms\"",
            "\"throughput_unit\": \"items_per_sec\"",
            "\"counters\": {\"hits\": 3}",
            "\"summary\": {\"speedup\": 2.000}",
            "\"bit_identical\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn telemetry_path_derivation() {
        assert_eq!(
            telemetry_path_for("BENCH_build.json"),
            "BENCH_build.telemetry.json"
        );
        assert_eq!(telemetry_path_for("out"), "out.telemetry.json");
    }

    #[test]
    fn git_rev_prefers_flag() {
        let args = vec!["--git-rev".to_string(), "deadbeef".to_string()];
        assert_eq!(git_rev(&args), "deadbeef");
    }

    #[test]
    fn git_rev_falls_back_to_the_checkout() {
        // Tests run inside the repo's checkout, so the rev-parse fallback
        // must produce a real short hash — never the `unknown` the
        // checked-in reports used to ship with.
        let rev = git_rev(&[]);
        if std::env::var("TRTSIM_GIT_REV").is_err() {
            assert_ne!(rev, "unknown");
            assert!(
                rev.len() >= 7 && rev.chars().all(|c| c.is_ascii_hexdigit()),
                "not a short hash: {rev}"
            );
        }
    }
}
