//! Benchmark support: shared fixtures for the Criterion benches.
//!
//! The benches live under `benches/`: `builder` (engine-build pipeline and
//! individual passes), `inference` (numeric and timed execution),
//! `experiments` (the paper's table harnesses end to end), and `serving`
//! (the inference server's submission path and batched serve runs).

#![warn(missing_docs)]

use trtsim_core::{Builder, BuilderConfig, Engine};
use trtsim_gpu::device::DeviceSpec;
use trtsim_models::ModelId;

/// Builds a deterministic engine fixture for benches.
pub fn engine_fixture(model: ModelId) -> Engine {
    Builder::new(
        DeviceSpec::xavier_nx(),
        BuilderConfig::default().with_build_seed(1),
    )
    .build(&model.descriptor())
    .expect("zoo models build")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        assert!(engine_fixture(ModelId::Mtcnn).launch_count() > 5);
    }
}
