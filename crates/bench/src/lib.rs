//! Benchmark support: shared fixtures for the Criterion benches.
//!
//! The benches live under `benches/`: `builder` (engine-build pipeline and
//! individual passes), `inference` (numeric and timed execution),
//! `experiments` (the paper's table harnesses end to end), and `serving`
//! (the inference server's submission path and batched serve runs).
//!
//! The `bench_build` binary (`cargo run --release -p trtsim-bench --bin
//! bench_build`) times whole-zoo engine builds cold, warm-cache, and
//! parallel, and writes `BENCH_build.json`; `bench_infer` does the same for
//! the numeric fast path and writes `BENCH_infer.json`. Both emit the shared
//! [`report::BenchReport`] schema and dump the process telemetry registry
//! next to the report.

#![warn(missing_docs)]

pub mod report;

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use trtsim_core::{Builder, BuilderConfig, Engine};
use trtsim_gpu::device::DeviceSpec;
use trtsim_models::ModelId;

/// One lazily-built fixture engine, shared by reference.
type FixtureSlot = Arc<OnceLock<Arc<Engine>>>;

/// Builds (once) and hands out the deterministic engine fixture for `model`.
///
/// Benches iterate thousands of times over the same engines; memoizing the
/// builds behind a process-wide map keeps fixture setup out of the measured
/// loops and out of bench startup time.
pub fn engine_fixture(model: ModelId) -> Arc<Engine> {
    static FIXTURES: OnceLock<Mutex<HashMap<ModelId, FixtureSlot>>> = OnceLock::new();
    let slot = {
        let map = FIXTURES.get_or_init(Mutex::default);
        let mut map = map.lock().expect("fixture map poisoned");
        Arc::clone(map.entry(model).or_default())
    };
    // Build outside the map lock so distinct models can build concurrently.
    Arc::clone(slot.get_or_init(|| {
        Arc::new(
            Builder::new(
                DeviceSpec::xavier_nx(),
                BuilderConfig::default().with_build_seed(1),
            )
            .build(&model.descriptor())
            .expect("zoo models build"),
        )
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        assert!(engine_fixture(ModelId::Mtcnn).launch_count() > 5);
    }

    #[test]
    fn fixture_is_memoized() {
        let a = engine_fixture(ModelId::Mtcnn);
        let b = engine_fixture(ModelId::Mtcnn);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
